"""Scheduled-event and timer records for the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True, slots=True)
class ScheduledEvent:
    """An entry in the scheduler's priority queue.

    Ordering is ``(time, seq)``: events at equal times fire in scheduling
    order, which makes runs fully deterministic.  The callback is excluded
    from comparisons.

    ``cancelled`` is a property so the owning scheduler can keep its
    live-event counter exact without scanning the heap: flipping the flag
    notifies the scheduler (while the event is still queued) through
    ``_on_cancel_changed``.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    _cancelled: bool = field(default=False, compare=False, repr=False)
    label: str = field(default="", compare=False)
    # Set by the scheduler at enqueue time; detached once the event leaves
    # the queue so late cancels cannot skew the live counter.
    _on_cancel_changed: Optional[Callable[[bool], None]] = field(
        default=None, compare=False, repr=False
    )

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @cancelled.setter
    def cancelled(self, value: bool) -> None:
        value = bool(value)
        if value == self._cancelled:
            return
        self._cancelled = value
        if self._on_cancel_changed is not None:
            self._on_cancel_changed(value)


class TimerHandle:
    """Cancellation handle returned by :meth:`ProcessHost.set_timer`.

    Cancellation is lazy: the event stays queued but is skipped when its
    time comes.  ``fired`` distinguishes "ran" from "cancelled first".
    """

    __slots__ = ("_event", "fired")

    def __init__(self, event: ScheduledEvent) -> None:
        self._event = event
        self.fired = False

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def active(self) -> bool:
        return not self._event.cancelled and not self.fired

    def cancel(self) -> None:
        self._event.cancelled = True

    def _mark_fired(self) -> None:
        self.fired = True
