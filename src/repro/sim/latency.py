"""Message-latency models, including eventual synchrony (GST).

The paper's failure detector needs an eventually synchronous system
(Section II: "increasing timing failures can be eventually detected" only
under eventual synchrony; Section IV-B accuracy requirements speak of
"communication rounds").  :class:`EventuallySynchronousLatency` models
this with a Global Stabilization Time: before GST delays may be large and
erratic; from GST on, every message between correct processes is delivered
within ``delta`` time units, so one "communication round" is ``delta``.
"""

from __future__ import annotations

from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId
from repro.util.rand import DeterministicRng


class LatencyModel:
    """Base class: sample the network delay for one message."""

    def sample(
        self, time: float, src: ProcessId, dst: ProcessId, rng: DeterministicRng
    ) -> float:
        raise NotImplementedError

    def round_length(self, time: float) -> float:
        """Upper bound on correct-process delay at ``time`` (one round)."""
        raise NotImplementedError

    def round_trip(self, time: float) -> float:
        """Upper bound on a request/response exchange at ``time``.

        Used as the default retransmission timeout seed by
        :class:`repro.sim.transport.ReliableTransport`: an ack cannot be
        expected sooner than a full round trip, so resending earlier is
        pure duplicate traffic.
        """
        return 2.0 * self.round_length(time)


class FixedLatency(LatencyModel):
    """Every message takes exactly ``delay`` units; ideal for unit tests."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay <= 0:
            raise ConfigurationError(f"latency must be positive, got {delay}")
        self.delay = delay

    def sample(self, time, src, dst, rng):  # noqa: D102 - trivial override
        return self.delay

    def round_length(self, time):  # noqa: D102
        return self.delay


class UniformLatency(LatencyModel):
    """Delays drawn uniformly from ``[low, high]`` — a synchronous system."""

    def __init__(self, low: float = 0.5, high: float = 1.0) -> None:
        if not 0 < low <= high:
            raise ConfigurationError(f"need 0 < low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, time, src, dst, rng):  # noqa: D102
        return rng.uniform(self.low, self.high)

    def round_length(self, time):  # noqa: D102
        return self.high


class EventuallySynchronousLatency(LatencyModel):
    """Erratic delays before GST, bounded by ``delta`` afterwards.

    Before ``gst`` each message's delay is uniform in
    ``[min_delay, pre_gst_max]`` (messages are still reliable — they are
    merely slow, so channels stay reliable as the paper requires).  From
    ``gst`` on, delays are uniform in ``[min_delay, delta]``.
    """

    def __init__(
        self,
        gst: float = 0.0,
        delta: float = 1.0,
        pre_gst_max: float = 10.0,
        min_delay: float = 0.1,
    ) -> None:
        if not 0 < min_delay <= delta:
            raise ConfigurationError(f"need 0 < min_delay <= delta, got {min_delay}, {delta}")
        if pre_gst_max < delta:
            raise ConfigurationError("pre-GST delays must be at least delta")
        if gst < 0:
            raise ConfigurationError(f"GST must be >= 0, got {gst}")
        self.gst = gst
        self.delta = delta
        self.pre_gst_max = pre_gst_max
        self.min_delay = min_delay

    def sample(self, time, src, dst, rng):  # noqa: D102
        # Inlined ``rng.uniform(a, b)`` == ``a + (b - a) * rng.random()``:
        # same formula as random.Random.uniform, so the drawn sequence is
        # bit-identical, without the Python-level uniform() frame per
        # message.
        if time < self.gst:
            return self.min_delay + (self.pre_gst_max - self.min_delay) * rng.random()
        return self.min_delay + (self.delta - self.min_delay) * rng.random()

    def round_length(self, time):  # noqa: D102
        return self.pre_gst_max if time < self.gst else self.delta
