"""Reliable — or deliberately lossy — asynchronous channels with hooks.

Channels between *correct* processes are reliable by default: every sent
message is eventually delivered, unmodified (the paper's system model,
Section IV).  An adversary may register an *interceptor* for the traffic
of faulty processes; the interceptor can drop, delay, or rewrite a faulty
process's outgoing messages — modelling omission, timing, and commission
failures at per-link granularity, which is exactly the granularity the
paper's failure detector targets ("even if they only affect individual
links").

Beyond the paper's model, the network optionally runs a *chaotic channel*
(:class:`ChaosConfig`): per-link probabilities of message loss,
duplication, and reordering, driven by a dedicated child of the run RNG.
Chaos is off by default, and a disabled (or all-zero) configuration draws
nothing from the chaos stream, so the reliable behaviour — including the
exact latency RNG sequence and therefore the full event trace — is
byte-identical to a network constructed without one.  The lossy regime is
what the retransmission / anti-entropy layers (``repro.sim.transport``,
Quorum Selection's digest sync) are tested against.

FIFO ordering is configurable per network; Follower Selection (Section
VIII) assumes FIFO between correct processes, Algorithm 1 does not.
Chaos *reordering* intentionally violates FIFO: a reordered message
leaves the link's delivery-floor track entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Tuple

from repro.obs.observability import Observability, message_stats_collector
from repro.sim.latency import FixedLatency, LatencyModel
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import MessageStats
from repro.util.errors import ConfigurationError, SimulationError
from repro.util.eventlog import EventLog
from repro.util.ids import ProcessId
from repro.util.rand import DeterministicRng

DELIVER = "deliver"
DROP = "drop"


def _validate_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class LinkChaos:
    """Chaos probabilities for one directed link (overrides the defaults)."""

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0

    def __post_init__(self) -> None:
        _validate_probability("drop", self.drop)
        _validate_probability("duplicate", self.duplicate)
        _validate_probability("reorder", self.reorder)

    @property
    def any_active(self) -> bool:
        return bool(self.drop or self.duplicate or self.reorder)


@dataclass(frozen=True)
class ChaosConfig:
    """Lossy/chaotic channel model: loss, duplication, reordering.

    ``drop``/``duplicate``/``reorder`` are the default per-message
    probabilities for every directed link; ``links`` overrides them for
    specific ``(src, dst)`` pairs (e.g. one flaky link, everything else
    clean).  A reordered message gains up to ``reorder_delay`` extra
    latency *and* escapes the FIFO delivery floor, so it can genuinely
    overtake and be overtaken; a duplicated message is delivered a second
    time up to ``reorder_delay`` later.

    All randomness comes from a dedicated ``chaos`` child of the network
    RNG, and nothing is drawn while :attr:`active` is false — an all-zero
    configuration therefore reproduces the reliable network's event trace
    byte for byte (tested in ``tests/test_sim_chaos.py``).
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_delay: float = 5.0
    links: Mapping[Tuple[int, int], LinkChaos] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _validate_probability("drop", self.drop)
        _validate_probability("duplicate", self.duplicate)
        _validate_probability("reorder", self.reorder)
        if self.reorder_delay <= 0:
            raise ConfigurationError(
                f"reorder_delay must be positive, got {self.reorder_delay}"
            )

    def for_link(self, src: ProcessId, dst: ProcessId) -> "ChaosConfig | LinkChaos":
        """The effective probabilities for one directed link."""
        return self.links.get((src, dst), self)

    @property
    def active(self) -> bool:
        """Whether any link can ever lose, duplicate, or reorder."""
        if self.drop or self.duplicate or self.reorder:
            return True
        return any(link.any_active for link in self.links.values())


@dataclass(frozen=True)
class SendAction:
    """Adversary verdict on one outgoing message of a faulty process.

    ``verdict`` is :data:`DELIVER` or :data:`DROP`; ``extra_delay`` adds a
    timing failure on top of the sampled network latency;
    ``payload_override`` substitutes the message (a commission failure —
    note the substitute must still authenticate, i.e. be signed with the
    faulty sender's own key, or receivers will discard it).
    """

    verdict: str = DELIVER
    extra_delay: float = 0.0
    payload_override: Optional[Any] = None


# The no-interceptor verdict never varies; one frozen instance serves every
# plain send instead of allocating a fresh SendAction per message.
_DELIVER_ACTION = SendAction()


@dataclass(slots=True)
class Envelope:
    """One in-flight message.

    ``extra_delay`` is the pending timing-failure delay (an interceptor's
    ``SendAction.extra_delay`` or an ``inject(..., delay=...)``), carried
    on the envelope — not as a dispatch argument — so it survives being
    held across a partition and is still honoured on release.
    """

    kind: str
    payload: Any
    src: ProcessId
    dst: ProcessId
    sent_at: float
    deliver_at: float = field(default=0.0)
    extra_delay: float = field(default=0.0)


Interceptor = Callable[[Envelope], SendAction]


class Network:
    """The message fabric connecting all :class:`ProcessHost` instances."""

    def __init__(
        self,
        scheduler: Scheduler,
        rng: DeterministicRng,
        latency: Optional[LatencyModel] = None,
        fifo: bool = True,
        log: Optional[EventLog] = None,
        stats: Optional[MessageStats] = None,
        chaos: Optional[ChaosConfig] = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.scheduler = scheduler
        self.rng = rng.child("network")
        self.latency = latency or FixedLatency(1.0)
        self.fifo = fifo
        self.log = log if log is not None else EventLog()
        self.stats = stats if stats is not None else MessageStats()
        # Run-wide observability, shared by every host on this network.
        # Message accounting is folded in at snapshot time (collector), so
        # the send/deliver hot path is untouched.
        self.obs = obs if obs is not None else Observability()
        self.obs.add_collector(message_stats_collector(self.stats))
        # Chaotic channel model.  The chaos stream is a *separate* RNG
        # child: enabling/disabling chaos never perturbs latency sampling,
        # and an inactive config short-circuits before any draw, keeping
        # chaos-off runs byte-identical to the plain reliable network.
        self.chaos = chaos
        self._chaos_rng = rng.child("network", "chaos")
        self._chaos_active = chaos is not None and chaos.active
        # Adversarial schedule jitter (E28): the adversary-as-scheduler
        # fuzzing pre-GST asynchrony.  Like chaos it draws from its own
        # dedicated RNG child and draws *nothing* while disarmed, so
        # adversary-off runs stay byte-identical to the plain network.
        self._adversary_jitter = 0.0
        self._adversary_rng = rng.child("network", "adversary")
        self._hosts: Dict[int, Any] = {}
        self._interceptors: Dict[int, Interceptor] = {}
        self._last_delivery: Dict[Tuple[int, int], float] = {}
        # Small FIFO tiebreak so two messages on one link never swap order.
        self._fifo_epsilon = 1e-9
        # Message kinds to record as per-message "net.send" log events
        # (None = tracing off; the default, to keep logs small).
        self._trace_kinds: Optional[set] = None
        # Active partition: list of process groups; traffic between
        # different groups is held until heal() (reliable channels:
        # a partition is just a very long delay, cf. pre-GST asynchrony).
        self._partition_groups: Optional[list] = None
        self._held: list = []

    # ------------------------------------------------------------------ wiring

    def register_host(self, host: Any) -> None:
        """Attach a process host; its ``pid`` becomes routable."""
        if host.pid in self._hosts:
            raise SimulationError(f"host p{host.pid} registered twice")
        self._hosts[host.pid] = host

    def set_interceptor(self, pid: ProcessId, interceptor: Optional[Interceptor]) -> None:
        """Install (or clear, with ``None``) the adversary hook for ``pid``.

        Only the traffic *sent by* ``pid`` passes through the hook: the
        adversary controls faulty processes, not the channels of correct
        ones.
        """
        if interceptor is None:
            self._interceptors.pop(pid, None)
        else:
            self._interceptors[pid] = interceptor

    def hosts(self) -> Dict[int, Any]:
        """Registered hosts by pid (read-only use)."""
        return dict(self._hosts)

    def set_adversary_jitter(self, amplitude: float) -> None:
        """Arm (or, with ``0``, disarm) adversarial delivery jitter.

        While armed, every delivery gains uniform extra latency in
        ``[0, amplitude)`` drawn from the dedicated adversary RNG child —
        the scheduler half of an attack: the adversary perturbs message
        interleavings without touching content, which the asynchronous
        system model (pre-GST) always permits.  Messages are only ever
        delayed, never lost, so channel reliability is preserved; FIFO
        links keep their per-link order via the delivery floor.  Disarmed
        (the default) the hook draws nothing, keeping adversary-off
        traces byte-identical.
        """
        if not amplitude >= 0.0:  # also rejects NaN
            raise ConfigurationError(
                f"adversary jitter must be >= 0, got {amplitude}"
            )
        self._adversary_jitter = float(amplitude)

    def trace(self, kinds: Optional[set]) -> None:
        """Record per-message ``net.send`` log events for these kinds.

        Used to regenerate message-flow figures (Figs. 2-3) via
        :mod:`repro.analysis.traces`; pass ``None`` to turn tracing off.
        """
        self._trace_kinds = set(kinds) if kinds is not None else None

    # --------------------------------------------------------------- partitions

    def partition(self, *groups: Iterable[int]) -> None:
        """Split the network: traffic between different groups is held.

        Channels stay reliable — held messages are delivered after
        :meth:`heal` — so a partition is semantically a (possibly long)
        asynchronous period, exactly the pre-GST behaviour the failure
        detector must cope with.  Processes absent from every group keep
        full connectivity.
        """
        group_sets = [set(g) for g in groups]
        seen: set = set()
        for group in group_sets:
            if seen & group:
                raise SimulationError("partition groups must be disjoint")
            seen |= group
        self._partition_groups = group_sets
        # Re-evaluate traffic held under the *previous* layout: an envelope
        # whose endpoints now share a side must be released immediately —
        # before this, re-partitioning while messages were held stranded
        # them until a full heal(), silently breaking channel reliability
        # for layouts that never fully heal.
        released = 0
        if self._held:
            still_held = []
            for envelope in self._held:
                if self._crosses_partition(envelope.src, envelope.dst):
                    still_held.append(envelope)
                else:
                    released += 1
                    self._dispatch(envelope)
            self._held = still_held
        self.log.append(
            self.scheduler.now, 0, "net.partition",
            groups=tuple(tuple(sorted(g)) for g in group_sets),
            released=released,
        )

    def heal(self) -> int:
        """End the partition; release held traffic.  Returns count released.

        Each released envelope keeps the ``extra_delay`` it was sent with
        (an adversary's timing failure or an ``inject`` delay): holding a
        message across a partition postpones, but never cancels, the delay
        the sender's interceptor imposed.
        """
        self._partition_groups = None
        held, self._held = self._held, []
        for envelope in held:
            self._dispatch(envelope)
        self.log.append(self.scheduler.now, 0, "net.heal", released=len(held))
        return len(held)

    def _crosses_partition(self, src: ProcessId, dst: ProcessId) -> bool:
        if self._partition_groups is None:
            return False
        src_group = dst_group = None
        for index, group in enumerate(self._partition_groups):
            if src in group:
                src_group = index
            if dst in group:
                dst_group = index
        return src_group is not None and dst_group is not None and src_group != dst_group

    # ------------------------------------------------------------------ sending

    def send(self, src: ProcessId, dst: ProcessId, kind: str, payload: Any) -> None:
        """Send one message; honours interceptors, latency, and FIFO.

        Sends to unknown destinations are dropped (and logged), not
        errors: a Byzantine peer can name any process id in a message
        (e.g. a bogus client id in a request), and a correct process
        reacting to it must not crash.
        """
        if dst not in self._hosts:
            self.log.append(self.scheduler.now, src, "net.unroutable", msg=kind, dst=dst)
            return
        now = self.scheduler.clock.now
        envelope = Envelope(kind=kind, payload=payload, src=src, dst=dst, sent_at=now)
        interceptor = self._interceptors.get(src)
        self.stats.record_sent(kind, src, dst)
        if interceptor is None:
            # Plain correct-process send: no verdict, no rewrite.
            action = _DELIVER_ACTION
        else:
            action = interceptor(envelope)
            if action.verdict == DROP:
                self.stats.record_dropped(kind, src, dst)
                self.log.append(now, src, "net.drop", msg=kind, dst=dst)
                return
            if action.payload_override is not None:
                envelope.payload = action.payload_override
                self.log.append(now, src, "net.rewrite", msg=kind, dst=dst)
            envelope.extra_delay = action.extra_delay
        if self._trace_kinds is not None and kind in self._trace_kinds:
            self.log.append(now, src, "net.send", msg=kind, dst=dst)
        if self._partition_groups is not None and self._crosses_partition(src, dst):
            self._held.append(envelope)
            return
        self._dispatch(envelope)

    def _dispatch(self, envelope: Envelope) -> None:
        """Sample chaos and latency, honour FIFO, and schedule delivery."""
        now = self.scheduler.clock.now
        reorder_extra = 0.0
        duplicate = False
        if self._chaos_active:
            # Draw order is fixed (drop, reorder, duplicate) so runs are a
            # pure function of the seed regardless of which faults fire.
            link = self.chaos.for_link(envelope.src, envelope.dst)
            chaos_rng = self._chaos_rng
            if link.drop and chaos_rng.random() < link.drop:
                self.stats.record_lost(envelope.kind, envelope.src, envelope.dst)
                self.log.append(
                    now, envelope.src, "net.lost", msg=envelope.kind, dst=envelope.dst
                )
                return
            if link.reorder and chaos_rng.random() < link.reorder:
                reorder_extra = chaos_rng.uniform(0.0, self.chaos.reorder_delay)
            if link.duplicate and chaos_rng.random() < link.duplicate:
                duplicate = True
        delay = (
            self.latency.sample(now, envelope.src, envelope.dst, self.rng)
            + envelope.extra_delay
        )
        if self._adversary_jitter:
            # After latency sampling so arming the hook never shifts the
            # latency stream; own child stream, zero draws when disarmed.
            delay += self._adversary_rng.uniform(0.0, self._adversary_jitter)
        deliver_at = now + delay
        if reorder_extra:
            # A reordered message leaves the FIFO track entirely: it
            # neither respects nor advances the link's delivery floor, so
            # it can overtake later sends and be overtaken by earlier ones.
            deliver_at += reorder_extra
        elif self.fifo:
            link_key = (envelope.src, envelope.dst)
            floor = self._last_delivery.get(link_key, 0.0)
            if deliver_at <= floor:
                deliver_at = floor + self._fifo_epsilon
            self._last_delivery[link_key] = deliver_at
        envelope.deliver_at = deliver_at
        # The label is debug-only; the envelope's kind is enough to identify
        # a runaway storm without paying an f-string per send.
        self.scheduler.schedule_at(
            deliver_at, partial(self._deliver, envelope), label=envelope.kind
        )
        if duplicate:
            # The spurious copy shares the envelope (payloads are immutable
            # at this point) and also skips the FIFO floor.
            copy_at = deliver_at + self._chaos_rng.uniform(0.0, self.chaos.reorder_delay)
            self.log.append(
                now, envelope.src, "net.dup", msg=envelope.kind, dst=envelope.dst
            )
            self.scheduler.schedule_at(
                copy_at, partial(self._deliver, envelope), label=envelope.kind
            )

    def inject(
        self, src: ProcessId, dst: ProcessId, kind: str, payload: Any, delay: float = 0.0
    ) -> None:
        """Adversary-side raw injection from a faulty process.

        Bypasses the interceptor (the adversary is talking to itself) but
        not authentication: receivers still verify signatures, so ``src``
        can only inject content signed with keys it actually holds.
        """
        if dst not in self._hosts:
            raise SimulationError(f"inject to unknown host p{dst}")
        now = self.scheduler.now
        envelope = Envelope(
            kind=kind, payload=payload, src=src, dst=dst, sent_at=now, extra_delay=delay
        )
        self.stats.record_sent(kind, src, dst)
        if self._crosses_partition(src, dst):
            self._held.append(envelope)
            return
        self._dispatch(envelope)

    def _deliver(self, envelope: Envelope) -> None:
        host = self._hosts.get(envelope.dst)
        if host is None or not host.running:
            return
        self.stats.record_delivered(envelope.kind, envelope.src, envelope.dst)
        host.on_receive(envelope.kind, envelope.payload, envelope.src)
