"""Per-process harness: module stack, timers, send/broadcast helpers.

Figure 1 of the paper composes each process out of three modules — a
failure detector, a quorum-selection module, and the application — with
events between modules processed in production order.  :class:`ProcessHost`
is that composition point: the network hands received messages to the
host, the host routes them through the failure detector (when one is
installed, so authentication and expectation matching happen first), and
the failure detector's ``DELIVER`` output is dispatched to whichever
modules subscribed to the message kind.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.crypto.authenticator import Authenticator
from repro.sim.events import TimerHandle
from repro.sim.network import Network
from repro.sim.scheduler import Scheduler
from repro.util.errors import SimulationError
from repro.util.eventlog import EventLog
from repro.util.ids import ProcessId

DeliveryHandler = Callable[[str, Any, ProcessId], None]


class Module:
    """Base class for protocol modules living on a :class:`ProcessHost`.

    Subclasses receive deliveries through the callbacks they subscribe and
    may use ``self.host`` for timers, sending, and signing.  ``start()`` is
    invoked once when the simulation begins.
    """

    def __init__(self, host: "ProcessHost") -> None:
        self.host = host

    @property
    def pid(self) -> ProcessId:
        return self.host.pid

    def start(self) -> None:
        """Hook run at simulation start; default does nothing."""

    def recover(self) -> None:
        """Hook run when the host recovers from a crash; default no-op.

        Modules with self-rearming timers (heartbeats, probes) restart
        them here — crash cancelled every pending timer.
        """


class ProcessHost:
    """One simulated process: identity, module stack, timers, channels."""

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        authenticator: Authenticator,
        log: Optional[EventLog] = None,
    ) -> None:
        self.pid = pid
        self.network = network
        self.authenticator = authenticator
        self.log = log if log is not None else network.log
        self.obs = network.obs
        self.running = True
        self.fd: Optional[Any] = None  # duck-typed FailureDetector
        self._subscribers: Dict[str, List[DeliveryHandler]] = {}
        self._modules: List[Module] = []
        self._timers: List[TimerHandle] = []
        network.register_host(self)

    # --------------------------------------------------------------- modules

    @property
    def scheduler(self) -> Scheduler:
        return self.network.scheduler

    @property
    def now(self) -> float:
        return self.network.scheduler.clock.now

    def add_module(self, module: Module) -> Module:
        """Attach a module; it will be started with the simulation."""
        self._modules.append(module)
        return module

    def subscribe(self, kind: str, handler: DeliveryHandler) -> None:
        """Route delivered messages of ``kind`` to ``handler``."""
        self._subscribers.setdefault(kind, []).append(handler)

    def start(self) -> None:
        """Start the failure detector (if any) and all modules."""
        if self.fd is not None and hasattr(self.fd, "start"):
            self.fd.start()
        for module in self._modules:
            module.start()

    # -------------------------------------------------------------- receiving

    def on_receive(self, kind: str, payload: Any, src: ProcessId) -> None:
        """Network entry point — the paper's ``<RECEIVE, m, i>`` event."""
        if not self.running:
            return
        if self.fd is not None:
            self.fd.on_receive(kind, payload, src)
        else:
            self.deliver(kind, payload, src)

    def deliver(self, kind: str, payload: Any, src: ProcessId) -> None:
        """Dispatch a delivered message — the paper's ``<DELIVER, m, i>``.

        Called by the failure detector after authentication (or directly by
        :meth:`on_receive` on hosts without one).  Unknown kinds are
        dropped silently: a Byzantine sender may emit arbitrary tags.
        """
        if not self.running:
            return
        for handler in self._subscribers.get(kind, ()):  # copy not needed: no unsubscribe
            handler(kind, payload, src)

    # ---------------------------------------------------------------- sending

    def send(self, dst: ProcessId, kind: str, payload: Any) -> None:
        """Send one message over the network (no implicit signing)."""
        if not self.running:
            return
        self.network.send(self.pid, dst, kind, payload)

    def broadcast(self, targets: Iterable[ProcessId], kind: str, payload: Any) -> None:
        """Send to every target; include ``self.pid`` in ``targets`` for
        the paper's "to all including self" broadcasts."""
        if not self.running:
            return
        for dst in sorted(set(targets)):
            if dst == self.pid:
                # Local self-delivery bypasses the network but still goes
                # through the module-ordering path (scheduled, not inline),
                # preserving "events processed in the order produced".
                self.scheduler.schedule(
                    0.0, lambda k=kind, p=payload: self.on_receive(k, p, self.pid),
                    label=f"self-deliver:{kind}@p{self.pid}",
                )
            else:
                self.network.send(self.pid, dst, kind, payload)

    # ----------------------------------------------------------------- timers

    def set_timer(self, delay: float, action: Callable[[], None], label: str = "") -> TimerHandle:
        """Arm a one-shot timer; returns a cancellation handle."""
        if delay < 0:
            raise SimulationError(f"negative timer delay {delay}")
        handle: Optional[TimerHandle] = None

        def fire() -> None:
            if not self.running:
                return
            handle._mark_fired()  # closure cell: bound before any fire time
            action()

        event = self.scheduler.schedule(delay, fire, label=label or "timer")
        handle = TimerHandle(event)
        self._timers.append(handle)
        return handle

    # ------------------------------------------------------------------ crash

    def crash(self) -> None:
        """Stop the process: no further receives, sends, or timer firings.

        Used by the benign-crash fault behaviour; from the network's point
        of view a crashed process simply goes silent, which is exactly what
        the failure detector must learn to suspect.
        """
        self.running = False
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        self.log.append(self.now, self.pid, "crash")
        self.obs.fault_injected(self.pid, self.now)

    def recover(self) -> None:
        """Restart a crashed process with its state intact (crash-recovery).

        The paper's *eventual detection* is explicitly modelled on the
        crash-recovery world (its reference [9]): a process may fail and
        come back, suspicions against it are cancelled when it resumes —
        but Quorum Selection's epoch-stamped matrix still remembers, so a
        recovered process stays out of the quorum until the epoch moves
        past its suspicion marks.
        """
        if self.running:
            return
        self.running = True
        self.log.append(self.now, self.pid, "recover")
        self.obs.fault_cleared(self.pid, self.now)
        if self.fd is not None and hasattr(self.fd, "recover"):
            self.fd.recover()
        for module in self._modules:
            module.recover()
