"""Top-level simulation builder and runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.crypto.authenticator import Authenticator
from repro.crypto.keys import KeyRegistry
from repro.obs.observability import Observability
from repro.sim.latency import EventuallySynchronousLatency, LatencyModel
from repro.sim.network import ChaosConfig, Network
from repro.sim.process import ProcessHost
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import MessageStats
from repro.util.errors import ConfigurationError
from repro.util.eventlog import EventLog
from repro.util.ids import ProcessId, all_processes
from repro.util.rand import DeterministicRng, make_rng


@dataclass
class SimulationConfig:
    """Parameters shared by most experiments.

    ``n`` processes, optional seed, an optional explicit latency model
    (default: eventually synchronous with GST at ``gst`` and post-GST delay
    bound ``delta``), FIFO channels on/off, an optional chaotic-channel
    model (``chaos``; ``None`` keeps the paper's reliable channels), and a
    scheduler step budget.
    """

    n: int
    seed: int = 1
    fifo: bool = True
    #: Observability on/off.  Off skips every metric, span, and collector
    #: registration; traces are byte-identical either way (instrumentation
    #: never touches the event log, the RNG streams, or scheduling).
    metrics: bool = True
    gst: float = 0.0
    delta: float = 1.0
    pre_gst_max: float = 10.0
    latency: Optional[LatencyModel] = None
    chaos: Optional[ChaosConfig] = None
    max_steps: int = 2_000_000
    extra: Dict[str, object] = field(default_factory=dict)

    def make_latency(self) -> LatencyModel:
        if self.latency is not None:
            return self.latency
        return EventuallySynchronousLatency(
            gst=self.gst, delta=self.delta, pre_gst_max=self.pre_gst_max
        )


class Simulation:
    """Owns the scheduler, network, keys, log, and all process hosts.

    Typical use::

        sim = Simulation(SimulationConfig(n=5, seed=7))
        for pid in sim.pids:
            host = sim.host(pid)
            ... attach failure detector / modules ...
        sim.start()
        sim.run_until(200.0)
    """

    def __init__(self, config: SimulationConfig) -> None:
        if config.n < 1:
            raise ConfigurationError(f"need n >= 1 processes, got {config.n}")
        self.config = config
        self.rng: DeterministicRng = make_rng(config.seed)
        self.log = EventLog()
        self.stats = MessageStats()
        self.scheduler = Scheduler(max_steps=config.max_steps)
        self.network = Network(
            scheduler=self.scheduler,
            rng=self.rng,
            latency=config.make_latency(),
            fifo=config.fifo,
            log=self.log,
            stats=self.stats,
            chaos=config.chaos,
            obs=Observability(enabled=config.metrics),
        )
        # One observability instance for the whole run, shared by every
        # host — detection latency spans need to see both the fault
        # injection (crashing host) and the suspicion (observing host).
        self.obs = self.network.obs
        self.registry = KeyRegistry(config.n)
        self.pids = sorted(all_processes(config.n))
        self._hosts: Dict[int, ProcessHost] = {}
        for pid in self.pids:
            authenticator = Authenticator(self.registry, pid)
            self._hosts[pid] = ProcessHost(pid, self.network, authenticator, self.log)
        self._started = False

    # ---------------------------------------------------------------- access

    def host(self, pid: ProcessId) -> ProcessHost:
        return self._hosts[pid]

    def hosts(self) -> Dict[int, ProcessHost]:
        return dict(self._hosts)

    @property
    def now(self) -> float:
        return self.scheduler.now

    # --------------------------------------------------------------- running

    def start(self) -> None:
        """Start every host's module stack (idempotent)."""
        if self._started:
            return
        self._started = True
        for pid in self.pids:
            self._hosts[pid].start()

    def run_until(self, t_end: float) -> None:
        """Start if necessary, then run all events up to ``t_end``."""
        self.start()
        self.scheduler.run_until(t_end)

    def run_to_quiescence(self) -> int:
        """Run until the event queue drains (beware self-rearming timers)."""
        self.start()
        return self.scheduler.run_to_quiescence()

    def at(self, time: float, action, label: str = "") -> None:
        """Schedule a harness action (fault injection, workload) at a time."""
        self.scheduler.schedule_at(time, action, label=label or "harness")
