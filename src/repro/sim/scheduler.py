"""Deterministic discrete-event scheduler."""

from __future__ import annotations

import gc
import heapq
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro.sim.clock import SimClock
from repro.sim.events import ScheduledEvent
from repro.util.errors import SimulationError


@contextmanager
def _relaxed_gc() -> Iterator[None]:
    """Raise the gen-0 collection threshold for the duration of a run.

    A busy simulation allocates millions of short-lived containers while
    holding large long-lived structures (event log, timer handles, the
    heap itself); the default gen-0 threshold of ~700 makes the collector
    re-scan those survivors constantly — nearly half the wall time of an
    n=30 run.  GC semantics never affect simulation results, so this only
    trades a bounded amount of peak memory for speed.  The previous
    thresholds are restored on exit.
    """
    old = gc.get_threshold()
    gc.set_threshold(max(old[0], 200_000), old[1], old[2])
    try:
        yield
    finally:
        gc.set_threshold(*old)


class RepeatingHandle:
    """Cancellation handle for :meth:`Scheduler.schedule_every` loops.

    Cancelling stops the loop permanently: the currently queued firing is
    skipped and no further one is armed.
    """

    __slots__ = ("cancelled", "_event")

    def __init__(self) -> None:
        self.cancelled = False
        self._event = None

    def cancel(self) -> None:
        self.cancelled = True
        if self._event is not None:
            self._event.cancelled = True


class Scheduler:
    """Priority-queue event loop with a hard step budget.

    The budget guards against accidental event storms (e.g. a protocol bug
    that re-broadcasts forever): exceeding it raises
    :class:`SimulationError` instead of hanging the test suite.
    """

    def __init__(self, clock: Optional[SimClock] = None, max_steps: int = 2_000_000) -> None:
        self.clock = clock or SimClock()
        self.max_steps = max_steps
        self.steps_executed = 0
        self._queue: list = []
        self._next_seq = 0
        self._live = 0  # queued, non-cancelled events (kept exact, O(1) pending)

    @property
    def now(self) -> float:
        return self.clock.now

    def schedule(self, delay: float, action: Callable[[], None], label: str = "") -> ScheduledEvent:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = ScheduledEvent(
            time=self.clock.now + delay, seq=self._next_seq, action=action, label=label
        )
        event._on_cancel_changed = self._on_cancel_changed
        self._next_seq += 1
        self._live += 1
        # Heap entries are (time, seq, event) tuples: ordering never reaches
        # the event object, so heap sifting compares plain floats/ints.
        heapq.heappush(self._queue, (event.time, event.seq, event))
        return event

    def _on_cancel_changed(self, now_cancelled: bool) -> None:
        """Keep the live counter exact as queued events flip ``cancelled``."""
        self._live += -1 if now_cancelled else 1

    def schedule_at(self, time: float, action: Callable[[], None], label: str = "") -> ScheduledEvent:
        """Schedule ``action`` at an absolute time (must not be in the past)."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule into the past (delay={time - self.clock.now})"
            )
        event = ScheduledEvent(time=time, seq=self._next_seq, action=action, label=label)
        event._on_cancel_changed = self._on_cancel_changed
        self._next_seq += 1
        self._live += 1
        heapq.heappush(self._queue, (time, event.seq, event))
        return event

    def schedule_every(
        self, period: float, action: Callable[[], None], label: str = ""
    ) -> RepeatingHandle:
        """Run ``action`` every ``period`` time units until cancelled.

        The first firing is one period from now; each firing re-arms the
        next *after* the action runs, so a slow action never overlaps
        itself and a cancel() from inside the action stops the loop.  Used
        for environment-level periodic work (anti-entropy sync, partition
        schedules) that should keep ticking across process crash/recover
        cycles — unlike :meth:`ProcessHost.set_timer` timers, which die
        with the process.
        """
        if period <= 0:
            raise SimulationError(f"repeating period must be positive, got {period}")
        handle = RepeatingHandle()

        def fire() -> None:
            if handle.cancelled:
                return
            action()
            if not handle.cancelled:
                handle._event = self.schedule(period, fire, label=label)

        handle._event = self.schedule(period, fire, label=label)
        return handle

    def pending(self) -> int:
        """Number of queued, non-cancelled events (O(1): live counter)."""
        return self._live

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is drained."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)[2]._on_cancel_changed = None
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Run the next event; returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)[2]
            event._on_cancel_changed = None  # off-queue: cancels no longer counted
            if event.cancelled:
                continue
            self._live -= 1
            self.steps_executed += 1
            if self.steps_executed > self.max_steps:
                raise SimulationError(
                    f"step budget of {self.max_steps} exceeded at t={event.time} "
                    f"(label={event.label!r}); likely an event storm"
                )
            self.clock.advance_to(event.time)
            action = event.action
            event.action = None  # one-shot; breaks the timer-handle cycle
            action()
            return True
        return False

    def run_until(self, t_end: float) -> None:
        """Execute every event with time <= ``t_end`` and advance the clock.

        The clock ends at exactly ``t_end`` even if the queue drained
        earlier, so "simulate for 100 units" means what it says.
        """
        # Fused pop/dispatch loop: equivalent to ``peek_time()``/``step()``
        # pairs, but touching the heap head once per event.  Heap pops are
        # time-ordered, so the clock can be assigned directly.
        queue = self._queue
        clock = self.clock
        pop = heapq.heappop
        max_steps = self.max_steps
        with _relaxed_gc():
            while queue:
                head = queue[0]
                event = head[2]
                if event._cancelled:
                    pop(queue)
                    event._on_cancel_changed = None
                    continue
                if head[0] > t_end:
                    break
                pop(queue)
                event._on_cancel_changed = None
                self._live -= 1
                self.steps_executed += 1
                if self.steps_executed > max_steps:
                    raise SimulationError(
                        f"step budget of {max_steps} exceeded at t={head[0]} "
                        f"(label={event.label!r}); likely an event storm"
                    )
                clock.now = head[0]
                action = event.action
                # Drop the callback: a fired event is one-shot, and timer
                # callbacks close over their TimerHandle, which points back
                # at the event — clearing the reference breaks that cycle
                # so the pair is reclaimed by refcount, not the cycle GC.
                event.action = None
                action()
        if t_end > clock.now:
            clock.advance_to(t_end)

    def run_to_quiescence(self) -> int:
        """Run until no events remain; returns the number of steps taken."""
        start = self.steps_executed
        with _relaxed_gc():
            while self.step():
                pass
        return self.steps_executed - start
