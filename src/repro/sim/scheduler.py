"""Deterministic discrete-event scheduler."""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.sim.clock import SimClock
from repro.sim.events import ScheduledEvent
from repro.util.errors import SimulationError


class Scheduler:
    """Priority-queue event loop with a hard step budget.

    The budget guards against accidental event storms (e.g. a protocol bug
    that re-broadcasts forever): exceeding it raises
    :class:`SimulationError` instead of hanging the test suite.
    """

    def __init__(self, clock: Optional[SimClock] = None, max_steps: int = 2_000_000) -> None:
        self.clock = clock or SimClock()
        self.max_steps = max_steps
        self.steps_executed = 0
        self._queue: list = []
        self._next_seq = 0

    @property
    def now(self) -> float:
        return self.clock.now

    def schedule(self, delay: float, action: Callable[[], None], label: str = "") -> ScheduledEvent:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = ScheduledEvent(
            time=self.clock.now + delay, seq=self._next_seq, action=action, label=label
        )
        self._next_seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, action: Callable[[], None], label: str = "") -> ScheduledEvent:
        """Schedule ``action`` at an absolute time (must not be in the past)."""
        return self.schedule(time - self.clock.now, action, label)

    def pending(self) -> int:
        """Number of queued, non-cancelled events."""
        return sum(1 for event in self._queue if not event.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is drained."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the next event; returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.steps_executed += 1
            if self.steps_executed > self.max_steps:
                raise SimulationError(
                    f"step budget of {self.max_steps} exceeded at t={event.time} "
                    f"(label={event.label!r}); likely an event storm"
                )
            self.clock.advance_to(event.time)
            event.action()
            return True
        return False

    def run_until(self, t_end: float) -> None:
        """Execute every event with time <= ``t_end`` and advance the clock.

        The clock ends at exactly ``t_end`` even if the queue drained
        earlier, so "simulate for 100 units" means what it says.
        """
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > t_end:
                break
            self.step()
        if t_end > self.clock.now:
            self.clock.advance_to(t_end)

    def run_to_quiescence(self) -> int:
        """Run until no events remain; returns the number of steps taken."""
        start = self.steps_executed
        while self.step():
            pass
        return self.steps_executed - start
