"""Message accounting for the simulator.

The intro of the paper argues Quorum Selection lets BFT systems "drop
approximately 1/3 or 1/2 of the inter-replica messages"; experiment E7
quantifies that by comparing per-request message counts across protocols.
:class:`MessageStats` is the measuring instrument: it counts messages
sent, delivered, and dropped, per message kind and per directed link.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Optional, Tuple


class MessageStats:
    """Counters for simulated traffic."""

    def __init__(self) -> None:
        self.sent_by_kind: Counter = Counter()
        self.delivered_by_kind: Counter = Counter()
        self.dropped_by_kind: Counter = Counter()
        self.lost_by_kind: Counter = Counter()
        self.sent_by_link: Counter = Counter()
        self.delivered_by_link: Counter = Counter()
        self.lost_by_link: Counter = Counter()

    # ------------------------------------------------------------- recording

    def record_sent(self, kind: str, src: int, dst: int) -> None:
        self.sent_by_kind[kind] += 1
        self.sent_by_link[(src, dst)] += 1

    def record_delivered(self, kind: str, src: int, dst: int) -> None:
        self.delivered_by_kind[kind] += 1
        self.delivered_by_link[(src, dst)] += 1

    def record_dropped(self, kind: str, src: int, dst: int) -> None:
        self.dropped_by_kind[kind] += 1

    def record_lost(self, kind: str, src: int, dst: int) -> None:
        """A message lost by the chaotic channel (vs. an adversary drop)."""
        self.lost_by_kind[kind] += 1
        self.lost_by_link[(src, dst)] += 1

    # --------------------------------------------------------------- queries

    def total_sent(self, kinds: Optional[Iterable[str]] = None) -> int:
        """Messages sent, optionally restricted to some kinds."""
        if kinds is None:
            return sum(self.sent_by_kind.values())
        return sum(self.sent_by_kind[k] for k in kinds)

    def total_delivered(self, kinds: Optional[Iterable[str]] = None) -> int:
        if kinds is None:
            return sum(self.delivered_by_kind.values())
        return sum(self.delivered_by_kind[k] for k in kinds)

    def sent_between(self, processes: Iterable[int]) -> int:
        """Messages sent on links where both endpoints are in ``processes``.

        This is the paper's "inter-replica messages" metric when called
        with the replica set.
        """
        members = set(processes)
        return sum(
            count
            for (src, dst), count in self.sent_by_link.items()
            if src in members and dst in members
        )

    def snapshot(self) -> Dict[str, Dict]:
        """Copyable summary for diffing before/after a workload phase."""
        return {
            "sent_by_kind": dict(self.sent_by_kind),
            "delivered_by_kind": dict(self.delivered_by_kind),
            "dropped_by_kind": dict(self.dropped_by_kind),
            "lost_by_kind": dict(self.lost_by_kind),
        }

    def diff_sent(self, before: Dict[str, Dict]) -> Dict[str, int]:
        """Per-kind messages sent since ``before`` (a :meth:`snapshot`)."""
        past = before.get("sent_by_kind", {})
        return {
            kind: count - past.get(kind, 0)
            for kind, count in self.sent_by_kind.items()
            if count - past.get(kind, 0)
        }

    def busiest_links(self, top: int = 10) -> Tuple[Tuple[Tuple[int, int], int], ...]:
        """The ``top`` most used directed links (for trace inspection)."""
        return tuple(self.sent_by_link.most_common(top))
