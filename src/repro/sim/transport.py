"""Reliable delivery on top of lossy channels: ack + backoff + dedup.

The paper assumes reliable channels (Section IV); production networks and
the simulator's :class:`~repro.sim.network.ChaosConfig` regime do not
provide them.  :class:`ReliableTransport` restores per-link reliability
the way production RPC stacks do:

- every outgoing protocol message is wrapped with a per-destination
  sequence number and tracked until the destination acknowledges it;
- an unacknowledged message is retransmitted with exponential backoff
  (initial timeout seeded from the latency model's round-trip bound,
  doubling up to a cap), so loss is survived and a healthy link is not
  flooded;
- the receiver acknowledges *every* copy (acks are lossy too) but
  delivers each sequence number at most once, using a cumulative floor
  plus an out-of-order window, so chaos duplication and retransmission
  never double-deliver.

Authentication is untouched: the wrapper carries the original payload
(usually a :class:`~repro.crypto.authenticator.SignedMessage`) verbatim,
and unwrapped messages re-enter the host through the normal
``on_receive`` path — signature verification and failure-detector
expectation matching happen exactly as for a direct send.  Acks are
unsigned; a Byzantine peer refusing to ack only makes us retransmit to
*it*, and a forged ack can only come from the true link peer (network
source addresses are trustworthy in the simulator), so correctness for
correct-process pairs is unaffected.

Crash/recovery follows the host's semantics: a crash kills the pending
retransmission timers with every other timer, and :meth:`recover` re-arms
them — unacknowledged messages survive the outage, which is exactly the
retry behaviour the suspicion matrix's eventual consistency (Lemma 1)
needs under the crash-recovery model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, Optional, Set, Tuple

from repro.sim.process import Module, ProcessHost
from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId

KIND_REL_DATA = "rel.data"
KIND_REL_ACK = "rel.ack"


@dataclass(slots=True)
class _Pending:
    """One unacknowledged outgoing message."""

    dst: ProcessId
    seq: int
    kind: str
    payload: Any
    rto: float
    attempts: int = 0
    timer: Any = field(default=None)


class ReliableTransport(Module):
    """Ack-based retransmission layer for one process.

    Protocol modules opt in by routing sends through :meth:`send` instead
    of ``host.send``; everything else (timers, signing, delivery order at
    the receiver) is unchanged.  The module must be attached to the host
    (``host.add_module``) so it subscribes its wire kinds at start.
    """

    def __init__(
        self,
        host: ProcessHost,
        rto: Optional[float] = None,
        backoff: float = 2.0,
        max_rto: float = 60.0,
        max_retries: Optional[int] = None,
    ) -> None:
        super().__init__(host)
        if rto is not None and rto <= 0:
            raise ConfigurationError(f"rto must be positive, got {rto}")
        if backoff < 1.0:
            raise ConfigurationError(f"backoff must be >= 1, got {backoff}")
        if max_rto <= 0:
            raise ConfigurationError(f"max_rto must be positive, got {max_rto}")
        if max_retries is not None and max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
        self.rto = rto
        self.backoff = backoff
        self.max_rto = max_rto
        # None = retransmit forever (a reliable channel); the backoff cap
        # bounds the residual traffic of a permanently dead destination.
        self.max_retries = max_retries
        self._next_seq: Dict[ProcessId, int] = {}
        self._pending: Dict[Tuple[ProcessId, int], _Pending] = {}
        # Receiver-side dedup per source: every seq <= floor was delivered;
        # seqs above it that arrived out of order wait in the window until
        # the floor catches up, so memory is bounded by the reorder window,
        # not the run length.
        self._recv_floor: Dict[ProcessId, int] = {}
        self._recv_window: Dict[ProcessId, Set[int]] = {}
        # --- instrumentation ---
        self.retransmissions = 0
        self.acks_received = 0
        self.duplicates_suppressed = 0
        self.delivered = 0
        self.abandoned = 0

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        self.host.subscribe(KIND_REL_DATA, self._on_data)
        self.host.subscribe(KIND_REL_ACK, self._on_ack)

    def recover(self) -> None:
        """Re-arm retransmission for everything still unacknowledged —
        the crash cancelled the timers but not the obligation to deliver."""
        for entry in list(self._pending.values()):
            self._arm(entry)

    # --------------------------------------------------------------- sending

    def send(self, dst: ProcessId, kind: str, payload: Any) -> int:
        """Send ``(kind, payload)`` reliably; returns the sequence number."""
        if dst == self.pid:
            raise ConfigurationError("reliable self-sends are meaningless: deliver locally")
        seq = self._next_seq.get(dst, 0) + 1
        self._next_seq[dst] = seq
        entry = _Pending(
            dst=dst, seq=seq, kind=kind, payload=payload, rto=self._initial_rto()
        )
        self._pending[(dst, seq)] = entry
        self._transmit(entry)
        return seq

    def pending_count(self) -> int:
        """Unacknowledged messages currently tracked (tests/benchmarks)."""
        return len(self._pending)

    def _initial_rto(self) -> float:
        if self.rto is not None:
            return self.rto
        return self.host.network.latency.round_trip(self.host.now)

    def _transmit(self, entry: _Pending) -> None:
        self.host.send(entry.dst, KIND_REL_DATA, (entry.seq, entry.kind, entry.payload))
        self._arm(entry)

    def _arm(self, entry: _Pending) -> None:
        entry.timer = self.host.set_timer(
            entry.rto, partial(self._on_timeout, entry), label=f"rel-rto@p{self.pid}"
        )

    def _on_timeout(self, entry: _Pending) -> None:
        if (entry.dst, entry.seq) not in self._pending:
            return  # acked while the timer was in flight
        if self.max_retries is not None and entry.attempts >= self.max_retries:
            del self._pending[(entry.dst, entry.seq)]
            self.abandoned += 1
            self.host.log.append(
                self.host.now, self.pid, "rel.giveup",
                dst=entry.dst, seq=entry.seq, msg=entry.kind,
            )
            return
        entry.attempts += 1
        entry.rto = min(entry.rto * self.backoff, self.max_rto)
        self.retransmissions += 1
        self._transmit(entry)

    # ------------------------------------------------------------- receiving

    def _on_data(self, kind: str, wrapper: Any, src: ProcessId) -> None:
        if not isinstance(wrapper, tuple) or len(wrapper) != 3:
            return  # Byzantine garbage: ignore silently
        seq, inner_kind, inner = wrapper
        if not isinstance(seq, int) or isinstance(seq, bool) or seq <= 0:
            return
        if not isinstance(inner_kind, str):
            return
        # Ack every copy: the previous ack may itself have been lost.
        self.host.send(src, KIND_REL_ACK, seq)
        floor = self._recv_floor.get(src, 0)
        window = self._recv_window.get(src)
        if seq <= floor or (window is not None and seq in window):
            self.duplicates_suppressed += 1
            return
        if window is None:
            window = self._recv_window.setdefault(src, set())
        window.add(seq)
        while floor + 1 in window:
            floor += 1
            window.discard(floor)
        self._recv_floor[src] = floor
        self.delivered += 1
        # Re-enter the host's normal receive path: the failure detector
        # authenticates and matches expectations exactly as for a direct
        # send, so the transport is invisible to the protocol above it.
        self.host.on_receive(inner_kind, inner, src)

    def _on_ack(self, kind: str, seq: Any, src: ProcessId) -> None:
        if not isinstance(seq, int) or isinstance(seq, bool):
            return
        entry = self._pending.pop((src, seq), None)
        if entry is None:
            return  # duplicate or stale ack
        self.acks_received += 1
        if entry.timer is not None:
            entry.timer.cancel()

    # ---------------------------------------------------------- diagnostics

    def stats(self) -> Dict[str, int]:
        """Counters for the lossy-gossip benchmark harness."""
        return {
            "retransmissions": self.retransmissions,
            "acks_received": self.acks_received,
            "duplicates_suppressed": self.duplicates_suppressed,
            "delivered": self.delivered,
            "abandoned": self.abandoned,
            "pending": len(self._pending),
        }
