"""Canonical world builders for integration tests, benchmarks, and tasks.

Historically ``build_qs_world`` lived in ``tests/conftest.py``; the
parallel execution engine (DESIGN.md §5.15) needs it importable from the
installed package so that spawn-started worker processes and the CLI can
construct the same worlds without depending on the test tree.
``tests/conftest.py`` re-exports it, so existing imports keep working.

:func:`attach_qs_stack` is the per-host half of world building: it wires
the Figure-1 module stack (failure detector, heartbeats, Quorum or
Follower Selection) onto *any* host implementing the host API
(:mod:`repro.hostapi`).  ``build_qs_world`` uses it for simulated hosts;
the live network runtime (:mod:`repro.net.node`) uses it for real ones —
the sim<->net parity guarantee starts with both runtimes assembling the
exact same stack through this one function.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.follower_selection import FollowerSelectionModule
from repro.core.quorum_selection import QuorumSelectionModule
from repro.fd.detector import FailureDetector
from repro.fd.heartbeat import HeartbeatModule
from repro.fd.timers import TimeoutPolicy
from repro.hostapi import require_host_api
from repro.sim.network import ChaosConfig
from repro.sim.runtime import Simulation, SimulationConfig
from repro.sim.transport import ReliableTransport


def attach_qs_stack(
    host: Any,
    n: int,
    f: int,
    follower_mode: bool = False,
    heartbeat_period: float = 2.0,
    base_timeout: float = 4.0,
    transport: Optional[ReliableTransport] = None,
    anti_entropy_period: Optional[float] = None,
) -> QuorumSelectionModule:
    """Mount the full Figure-1 stack on one host; returns the QS module.

    The host only needs the host API — a simulated
    :class:`~repro.sim.process.ProcessHost` and a live
    :class:`~repro.net.host.NetHost` both qualify.  A ``transport`` is
    attached *here* (between the heartbeat and the selection module) so
    module start order — and therefore the event trace — matches the seed
    world byte for byte.
    """
    require_host_api(host)
    FailureDetector(host, TimeoutPolicy(base_timeout=base_timeout))
    host.add_module(HeartbeatModule(host, n=n, period=heartbeat_period))
    if transport is not None:
        host.add_module(transport)
    extra = dict(transport=transport, anti_entropy_period=anti_entropy_period)
    if follower_mode:
        return host.add_module(FollowerSelectionModule(host, n=n, f=f, **extra))
    return host.add_module(QuorumSelectionModule(host, n=n, f=f, **extra))


def build_qs_world(
    n: int,
    f: int,
    seed: int = 3,
    follower_mode: bool = False,
    gst: float = 0.0,
    heartbeat_period: float = 2.0,
    base_timeout: float = 4.0,
    chaos: Optional[ChaosConfig] = None,
    reliable: bool = False,
    anti_entropy_period: Optional[float] = None,
    metrics: bool = True,
) -> Tuple[Simulation, Dict[int, QuorumSelectionModule]]:
    """Full stack for Quorum/Follower Selection integration tests.

    ``chaos`` switches the network to the lossy-channel model;
    ``reliable`` routes UPDATE/FOLLOWERS through a per-process
    :class:`ReliableTransport`; ``anti_entropy_period`` arms the periodic
    matrix sync.  All three default off, reproducing the seed world.
    ``metrics=False`` disables observability entirely; the protocol trace
    is byte-identical either way (the byte-identity test holds it to that).
    """
    sim = Simulation(SimulationConfig(n=n, seed=seed, gst=gst, delta=1.0,
                                      chaos=chaos, metrics=metrics))
    modules: Dict[int, QuorumSelectionModule] = {}
    for pid in sim.pids:
        host = sim.host(pid)
        transport = ReliableTransport(host) if reliable else None
        modules[pid] = attach_qs_stack(
            host,
            n,
            f,
            follower_mode=follower_mode,
            heartbeat_period=heartbeat_period,
            base_timeout=base_timeout,
            transport=transport,
            anti_entropy_period=anti_entropy_period,
        )
    return sim, modules
