"""Canonical world builders for integration tests, benchmarks, and tasks.

Historically ``build_qs_world`` lived in ``tests/conftest.py``; the
parallel execution engine (DESIGN.md §5.15) needs it importable from the
installed package so that spawn-started worker processes and the CLI can
construct the same worlds without depending on the test tree.
``tests/conftest.py`` re-exports it, so existing imports keep working.

:func:`attach_qs_stack` is the per-host half of world building: it wires
the Figure-1 module stack (failure detector, heartbeats, Quorum or
Follower Selection) onto *any* host implementing the host API
(:mod:`repro.hostapi`).  ``build_qs_world`` uses it for simulated hosts;
the live network runtime (:mod:`repro.net.node`) uses it for real ones —
the sim<->net parity guarantee starts with both runtimes assembling the
exact same stack through this one function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.follower_selection import FollowerSelectionModule
from repro.core.quorum_selection import QuorumSelectionModule
from repro.fd.detector import FailureDetector
from repro.fd.heartbeat import HeartbeatModule
from repro.fd.timers import TimeoutPolicy
from repro.hostapi import require_host_api
from repro.sim.network import ChaosConfig
from repro.sim.runtime import Simulation, SimulationConfig
from repro.sim.transport import ReliableTransport


def attach_qs_stack(
    host: Any,
    n: int,
    f: int,
    follower_mode: bool = False,
    heartbeat_period: float = 2.0,
    base_timeout: float = 4.0,
    transport: Optional[ReliableTransport] = None,
    anti_entropy_period: Optional[float] = None,
) -> QuorumSelectionModule:
    """Mount the full Figure-1 stack on one host; returns the QS module.

    The host only needs the host API — a simulated
    :class:`~repro.sim.process.ProcessHost` and a live
    :class:`~repro.net.host.NetHost` both qualify.  A ``transport`` is
    attached *here* (between the heartbeat and the selection module) so
    module start order — and therefore the event trace — matches the seed
    world byte for byte.
    """
    require_host_api(host)
    FailureDetector(host, TimeoutPolicy(base_timeout=base_timeout))
    host.add_module(HeartbeatModule(host, n=n, period=heartbeat_period))
    if transport is not None:
        host.add_module(transport)
    extra = dict(transport=transport, anti_entropy_period=anti_entropy_period)
    if follower_mode:
        return host.add_module(FollowerSelectionModule(host, n=n, f=f, **extra))
    return host.add_module(QuorumSelectionModule(host, n=n, f=f, **extra))


def build_qs_world(
    n: int,
    f: int,
    seed: int = 3,
    follower_mode: bool = False,
    gst: float = 0.0,
    heartbeat_period: float = 2.0,
    base_timeout: float = 4.0,
    chaos: Optional[ChaosConfig] = None,
    reliable: bool = False,
    anti_entropy_period: Optional[float] = None,
    metrics: bool = True,
) -> Tuple[Simulation, Dict[int, QuorumSelectionModule]]:
    """Full stack for Quorum/Follower Selection integration tests.

    ``chaos`` switches the network to the lossy-channel model;
    ``reliable`` routes UPDATE/FOLLOWERS through a per-process
    :class:`ReliableTransport`; ``anti_entropy_period`` arms the periodic
    matrix sync.  All three default off, reproducing the seed world.
    ``metrics=False`` disables observability entirely; the protocol trace
    is byte-identical either way (the byte-identity test holds it to that).
    """
    sim = Simulation(SimulationConfig(n=n, seed=seed, gst=gst, delta=1.0,
                                      chaos=chaos, metrics=metrics))
    modules: Dict[int, QuorumSelectionModule] = {}
    for pid in sim.pids:
        host = sim.host(pid)
        transport = ReliableTransport(host) if reliable else None
        modules[pid] = attach_qs_stack(
            host,
            n,
            f,
            follower_mode=follower_mode,
            heartbeat_period=heartbeat_period,
            base_timeout=base_timeout,
            transport=transport,
            anti_entropy_period=anti_entropy_period,
        )
    return sim, modules


# --------------------------------------------------------- replicated service


def attach_kv_service_stack(
    host: Any,
    n: int,
    f: int,
    heartbeat_period: float = 4.0,
    base_timeout: float = 8.0,
    batch_size: int = 1,
    batch_window: float = 0.0,
    checkpoint_interval: Optional[int] = None,
    protocol: str = "xpaxos",
):
    """Mount the replicated-KV service stack on one host.

    Failure detector, heartbeats, Quorum Selection, and a replica of the
    named :class:`~repro.protocol.backend.ProtocolBackend` executing a
    :class:`~repro.service.kv.ServiceKVStore` — the ``--service kv``
    node role and the sim service world both assemble through here,
    extending the sim<->net parity guarantee to the service layer.
    Returns ``(qs_module, replica)``.
    """
    from repro.protocol.backend import get_backend
    from repro.service.kv import ServiceKVStore

    backend = get_backend(protocol)
    require_host_api(host)
    FailureDetector(host, TimeoutPolicy(base_timeout=base_timeout))
    host.add_module(HeartbeatModule(host, n=n, period=heartbeat_period))
    qs_module = host.add_module(QuorumSelectionModule(host, n=n, f=f))
    replica = backend.build_replica(
        host,
        n,
        f,
        qs_module,
        batch_size=batch_size,
        batch_window=batch_window,
        checkpoint_interval=checkpoint_interval,
        state_machine=ServiceKVStore(),
    )
    return qs_module, replica


@dataclass
class KVServiceWorld:
    """Handles to one assembled sim service world."""

    sim: Simulation
    n: int
    f: int
    replicas: Dict[int, Any]
    qs_modules: Dict[int, QuorumSelectionModule]
    clients: Dict[int, Any] = field(default_factory=dict)
    adversary: Any = None
    protocol: str = "xpaxos"

    @property
    def gen_host(self) -> Any:
        """The host load generators hang their timers on."""
        first_client = min(self.clients) if self.clients else min(self.replicas)
        return self.sim.host(first_client)


def build_kv_service_world(
    n: int,
    f: int,
    clients: int,
    seed: int = 3,
    gst: float = 0.0,
    delta: float = 1.0,
    heartbeat_period: float = 4.0,
    fd_base_timeout: float = 8.0,
    retry_timeout: float = 10.0,
    batch_size: int = 1,
    batch_window: float = 0.0,
    checkpoint_interval: Optional[int] = None,
    protocol: str = "xpaxos",
    max_steps: int = 20_000_000,
) -> KVServiceWorld:
    """Replicated KV service plus ``clients`` idle service clients.

    Clients occupy pids ``n+1 .. n+clients`` (the registry covers them
    because ``SimulationConfig.n`` counts every process) and submit
    nothing on their own — drive them with a
    :class:`~repro.service.loadgen.LoadGenerator`.
    """
    from repro.failures.adversary import Adversary
    from repro.service.client import ServiceClient

    sim = Simulation(
        SimulationConfig(
            n=n + clients, seed=seed, gst=gst, delta=delta,
            fifo=True, max_steps=max_steps,
        )
    )
    replicas: Dict[int, Any] = {}
    qs_modules: Dict[int, QuorumSelectionModule] = {}
    for pid in range(1, n + 1):
        qs_module, replica = attach_kv_service_stack(
            sim.host(pid),
            n,
            f,
            heartbeat_period=heartbeat_period,
            base_timeout=fd_base_timeout,
            batch_size=batch_size,
            batch_window=batch_window,
            checkpoint_interval=checkpoint_interval,
            protocol=protocol,
        )
        qs_modules[pid] = qs_module
        replicas[pid] = replica
    client_modules: Dict[int, Any] = {}
    for index in range(clients):
        pid = n + 1 + index
        host = sim.host(pid)
        client_modules[pid] = host.add_module(
            ServiceClient(host, n=n, f=f, retry_timeout=retry_timeout)
        )
    adversary = Adversary(sim, f_max=f)
    return KVServiceWorld(
        sim=sim, n=n, f=f, replicas=replicas, qs_modules=qs_modules,
        clients=client_modules, adversary=adversary, protocol=protocol,
    )


def shard_seed(seed: int, shard: int) -> int:
    """Root seed of one shard's world, derived by name (stable path)."""
    from repro.util.rand import derive_seed

    return derive_seed(seed, "shard", shard)


def build_sharded_kv_worlds(
    shards: int,
    n: int,
    f: int,
    clients: int,
    seed: int = 3,
    **world_kwargs: Any,
) -> list:
    """``shards`` independent KV service worlds for one deployment.

    Each world is a full :func:`build_kv_service_world` (own pid space
    1..n+clients, own RNG streams) under a per-shard derived seed, so
    shard worlds are statistically independent yet the deployment as a
    whole replays deterministically from one root seed.  The sharded
    sim driver (:mod:`repro.shard.sim`) advances them in lockstep.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    return [
        build_kv_service_world(
            n=n, f=f, clients=clients, seed=shard_seed(seed, shard),
            **world_kwargs,
        )
        for shard in range(shards)
    ]
