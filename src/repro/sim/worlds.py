"""Canonical world builders for integration tests, benchmarks, and tasks.

Historically ``build_qs_world`` lived in ``tests/conftest.py``; the
parallel execution engine (DESIGN.md §5.15) needs it importable from the
installed package so that spawn-started worker processes and the CLI can
construct the same worlds without depending on the test tree.
``tests/conftest.py`` re-exports it, so existing imports keep working.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.follower_selection import FollowerSelectionModule
from repro.core.quorum_selection import QuorumSelectionModule
from repro.fd.detector import FailureDetector
from repro.fd.heartbeat import HeartbeatModule
from repro.fd.timers import TimeoutPolicy
from repro.sim.network import ChaosConfig
from repro.sim.runtime import Simulation, SimulationConfig
from repro.sim.transport import ReliableTransport


def build_qs_world(
    n: int,
    f: int,
    seed: int = 3,
    follower_mode: bool = False,
    gst: float = 0.0,
    heartbeat_period: float = 2.0,
    base_timeout: float = 4.0,
    chaos: Optional[ChaosConfig] = None,
    reliable: bool = False,
    anti_entropy_period: Optional[float] = None,
) -> Tuple[Simulation, Dict[int, QuorumSelectionModule]]:
    """Full stack for Quorum/Follower Selection integration tests.

    ``chaos`` switches the network to the lossy-channel model;
    ``reliable`` routes UPDATE/FOLLOWERS through a per-process
    :class:`ReliableTransport`; ``anti_entropy_period`` arms the periodic
    matrix sync.  All three default off, reproducing the seed world.
    """
    sim = Simulation(SimulationConfig(n=n, seed=seed, gst=gst, delta=1.0, chaos=chaos))
    modules: Dict[int, QuorumSelectionModule] = {}
    for pid in sim.pids:
        host = sim.host(pid)
        FailureDetector(host, TimeoutPolicy(base_timeout=base_timeout))
        host.add_module(HeartbeatModule(host, n=n, period=heartbeat_period))
        transport = host.add_module(ReliableTransport(host)) if reliable else None
        extra = dict(transport=transport, anti_entropy_period=anti_entropy_period)
        if follower_mode:
            modules[pid] = host.add_module(FollowerSelectionModule(host, n=n, f=f, **extra))
        else:
            modules[pid] = host.add_module(QuorumSelectionModule(host, n=n, f=f, **extra))
    return sim, modules
