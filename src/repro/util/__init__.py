"""Shared utilities: process identifiers, errors, deterministic RNG, logs.

These helpers are deliberately tiny and dependency-free; every other
subpackage builds on them.  Process identifiers follow the paper's
convention: processes are ``p_1 .. p_n`` ordered by unique integer ids
(Section IV), and quorums/sets of processes are compared in lexicographic
order of their sorted id tuples (Section VI-B).
"""

from repro.util.errors import (
    ReproError,
    ConfigurationError,
    AuthenticationError,
    ProtocolError,
    SimulationError,
)
from repro.util.ids import (
    ProcessId,
    ProcessSet,
    validate_pid,
    all_processes,
    quorum_sort_key,
    lexicographic_min_quorum,
    format_pid,
    format_pset,
)
from repro.util.rand import DeterministicRng, derive_seed
from repro.util.eventlog import EventLog, LoggedEvent

__all__ = [
    "ReproError",
    "ConfigurationError",
    "AuthenticationError",
    "ProtocolError",
    "SimulationError",
    "ProcessId",
    "ProcessSet",
    "validate_pid",
    "all_processes",
    "quorum_sort_key",
    "lexicographic_min_quorum",
    "format_pid",
    "format_pset",
    "DeterministicRng",
    "derive_seed",
    "EventLog",
    "LoggedEvent",
]
