"""Exception hierarchy for the reproduction library.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything from this package with one ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters.

    Examples: ``n <= f``, a quorum size that does not satisfy
    ``q = n - f``, or a Follower Selection instance with ``n <= 3f``.
    """


class AuthenticationError(ReproError):
    """A message failed signature verification.

    Raised by :mod:`repro.crypto` when a signature does not verify.  In a
    simulation this indicates either deliberate adversarial tampering or a
    harness bug; protocol modules treat it by dropping the message.
    """


class ProtocolError(ReproError):
    """A protocol module received input that violates its state machine.

    This signals a harness bug (e.g. delivering an event to a stopped
    replica), *not* Byzantine behaviour; Byzantine behaviour is handled by
    the protocol logic itself and never raises.
    """


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state.

    Examples: scheduling an event in the past, or running a simulation that
    exceeded its configured step budget without quiescing.
    """


class ExecutionError(ReproError):
    """A parallel sweep task failed inside a worker process.

    Raised by :mod:`repro.analysis.sweeps` when one or more task
    executions dispatched through the engine returned a structured error
    record and the caller asked for failures to propagate
    (``on_error="raise"``).  Carries the per-task records so harnesses
    running with ``on_error="record"`` can report them instead.
    """

    def __init__(self, message: str, failures=()):  # noqa: D401
        super().__init__(message)
        self.failures = tuple(failures)
