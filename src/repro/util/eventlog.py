"""Structured event logging for simulations and protocol traces.

Protocol modules append :class:`LoggedEvent` records (time, process, kind,
payload) to a shared :class:`EventLog`.  Tests and benchmark harnesses
query the log to reconstruct message-flow figures (e.g. the paper's
Figures 2 and 3) and to assert eventual properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True, slots=True)
class LoggedEvent:
    """One record in an :class:`EventLog`.

    Attributes:
        time: simulation time at which the event occurred.
        process: 1-based id of the process the event occurred at, or 0 for
            system-level events (e.g. adversary actions, GST).
        kind: short machine-readable tag, e.g. ``"quorum"`` or ``"suspect"``.
        payload: free-form details, kept JSON-ish for easy rendering.
    """

    time: float
    process: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """Human-readable one-liner, used by trace printers."""
        who = f"p{self.process}" if self.process else "sys"
        details = ", ".join(f"{k}={v}" for k, v in sorted(self.payload.items()))
        return f"[{self.time:10.3f}] {who:>5} {self.kind:<18} {details}"


class EventLog:
    """Append-only log of :class:`LoggedEvent` records.

    The log preserves append order (which in the simulator equals
    occurrence order, ties broken deterministically) and offers simple
    filtered views.  It is intentionally not thread-safe: the simulator is
    single-threaded by design.
    """

    def __init__(self) -> None:
        self._events: List[LoggedEvent] = []

    def append(self, time: float, process: int, kind: str, **payload: Any) -> LoggedEvent:
        """Record and return a new event."""
        # ``payload`` is the fresh kwargs dict — no defensive copy needed.
        event = LoggedEvent(time=time, process=process, kind=kind, payload=payload)
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[LoggedEvent]:
        return iter(self._events)

    def events(
        self,
        kind: Optional[str] = None,
        process: Optional[int] = None,
        predicate: Optional[Callable[[LoggedEvent], bool]] = None,
    ) -> List[LoggedEvent]:
        """Return events filtered by kind, process, and/or a predicate."""
        out = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if process is not None and event.process != process:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def count(self, kind: str, process: Optional[int] = None) -> int:
        """Number of events of a kind (optionally at one process)."""
        return len(self.events(kind=kind, process=process))

    def last(self, kind: str, process: Optional[int] = None) -> Optional[LoggedEvent]:
        """Most recent matching event, or ``None``."""
        matching = self.events(kind=kind, process=process)
        return matching[-1] if matching else None

    def render(self, *kinds: str) -> str:
        """Render matching events (all, if no kinds given) as text lines."""
        wanted = set(kinds)
        lines = [
            event.describe()
            for event in self._events
            if not wanted or event.kind in wanted
        ]
        return "\n".join(lines)
