"""Small filesystem helpers shared across the repo.

``atomic_write_text`` is the tmp-file + ``os.replace`` pattern used by the
sweep cache: readers either see the previous complete file or the new
complete file, never a torn partial write.  ``os.replace`` is atomic on
POSIX when source and destination live on the same filesystem, which the
sibling tmp file guarantees.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` so a partial file is never visible.

    The content goes to a same-directory tmp file first and is renamed over
    the destination only once fully written.  A crash (or a scraper racing
    the writer) mid-write leaves the previous file intact; the stale tmp
    file is cleaned up on failure when possible.
    """
    target = Path(path)
    tmp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
    try:
        tmp.write_text(text)
        os.replace(tmp, target)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
