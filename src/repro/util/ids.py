"""Process identifiers and quorum ordering.

The paper (Section IV) assumes processes ``p_1 .. p_n`` ordered by unique
identifiers.  We represent a process id as a positive ``int`` (1-based, so
``p_3`` is simply ``3``) and a set of processes as a ``frozenset`` of ids.

Quorums are compared lexicographically on their *sorted* id tuple
(Section VI-B: "the first in lexicographical order is chosen"), e.g.::

    {1, 3, 4} < {1, 3, 5} < {2, 3, 4}
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Tuple

from repro.util.errors import ConfigurationError

ProcessId = int
ProcessSet = FrozenSet[int]


def validate_pid(pid: ProcessId, n: Optional[int] = None) -> ProcessId:
    """Validate a process id, optionally against a system size ``n``.

    Returns the id unchanged so the call can be used inline.  Raises
    :class:`ConfigurationError` for non-integers, ids below 1, or ids above
    ``n`` when ``n`` is given.
    """
    if isinstance(pid, bool) or not isinstance(pid, int):
        raise ConfigurationError(f"process id must be an int, got {pid!r}")
    if pid < 1:
        raise ConfigurationError(f"process ids are 1-based, got {pid}")
    if n is not None and pid > n:
        raise ConfigurationError(f"process id {pid} exceeds system size n={n}")
    return pid


def all_processes(n: int) -> ProcessSet:
    """Return the process set ``Pi = {1, .., n}``."""
    if n < 1:
        raise ConfigurationError(f"system size must be >= 1, got {n}")
    return frozenset(range(1, n + 1))


def quorum_sort_key(quorum: Iterable[ProcessId]) -> Tuple[int, ...]:
    """Key for the paper's lexicographic order on quorums.

    Quorums of equal size are ordered by their sorted id tuples, which is
    exactly lexicographic order on sets of equal cardinality.
    """
    return tuple(sorted(quorum))


def lexicographic_min_quorum(quorums: Iterable[Iterable[ProcessId]]) -> ProcessSet:
    """Return the lexicographically smallest quorum of an iterable.

    Raises :class:`ConfigurationError` on an empty iterable.
    """
    best: Optional[Tuple[int, ...]] = None
    for quorum in quorums:
        key = quorum_sort_key(quorum)
        if best is None or key < best:
            best = key
    if best is None:
        raise ConfigurationError("lexicographic_min_quorum of empty iterable")
    return frozenset(best)


def format_pid(pid: ProcessId) -> str:
    """Render a process id in the paper's ``p_i`` notation."""
    return f"p{pid}"


def format_pset(pids: Iterable[ProcessId]) -> str:
    """Render a process set as ``{p1, p3, p4}`` in id order."""
    inner = ", ".join(format_pid(p) for p in sorted(pids))
    return "{" + inner + "}"


def default_quorum(n: int, q: int) -> ProcessSet:
    """The paper's initial quorum ``{p_1, .., p_q}`` (Algorithm 1 state)."""
    if not 1 <= q <= n:
        raise ConfigurationError(f"quorum size q={q} out of range for n={n}")
    return frozenset(range(1, q + 1))


def ordered(pids: Iterable[ProcessId]) -> List[ProcessId]:
    """Return process ids as a sorted list (ascending id order)."""
    return sorted(pids)
