"""Deterministic randomness for reproducible simulations.

Every stochastic component (network delay sampling, random adversaries,
workload generators) draws from a :class:`DeterministicRng` derived from a
single experiment seed.  Components derive child seeds by *name* so adding
a new consumer never perturbs the streams of existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a child seed from a root seed and a path of names.

    The derivation hashes the textual path, so it is stable across runs,
    platforms, and Python versions (unlike ``hash()``).
    """
    digest = hashlib.sha256()
    digest.update(str(root_seed).encode("utf-8"))
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class DeterministicRng:
    """A named, seeded random stream.

    Thin wrapper over :class:`random.Random` that remembers its seed/name
    for diagnostics and offers the handful of draws the library needs.
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        self._random = random.Random(seed)
        # Bound C methods, re-exported without a delegation frame: latency
        # sampling calls uniform() once per message.
        self.uniform = self._random.uniform
        self.random = self._random.random

    def child(self, *names: object) -> "DeterministicRng":
        """Create an independent child stream addressed by ``names``."""
        child_seed = derive_seed(self.seed, *names)
        child_name = self.name + "/" + "/".join(str(n) for n in names)
        return DeterministicRng(child_seed, child_name)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list:
        """Sample ``k`` distinct elements."""
        return self._random.sample(seq, k)

    def shuffle(self, items: list) -> None:
        """Shuffle a list in place."""
        self._random.shuffle(items)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival draw with the given rate."""
        return self._random.expovariate(rate)

    def coin(self, probability: float) -> bool:
        """Bernoulli draw."""
        return self._random.random() < probability

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DeterministicRng(seed={self.seed}, name={self.name!r})"


def make_rng(seed: Optional[int], name: str = "root") -> DeterministicRng:
    """Create an RNG; ``None`` maps to a fixed default seed (reproducible)."""
    return DeterministicRng(0xC0FFEE if seed is None else seed, name)
