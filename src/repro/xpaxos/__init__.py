"""A from-scratch XPaxos substrate with the paper's FD integration (Sec. V).

XPaxos (Liu et al., OSDI'16) tolerates ``f`` arbitrary faults with only
``n = 2f + 1`` replicas in the XFT model by running normal-case agreement
inside an *active quorum* of ``q = n - f`` replicas (Figure 2) and
changing the quorum (a view change) on failure.  This package provides:

- the normal-case protocol, including the paper's three integration
  subtleties: COMMIT embeds the signed PREPARE (equivocation becomes
  detectable), a COMMIT arriving before its PREPARE triggers an
  expectation for the PREPARE plus an own COMMIT (Figure 3), and no
  expectation is issued for a process whose COMMIT already arrived;
- expectation wiring into :class:`repro.fd.FailureDetector` exactly as
  Section V-A prescribes;
- view changes, with the view <-> quorum mapping of Section V-B
  (lexicographic enumeration of all ``C(n, f)`` quorums, round-robin), so
  a ``<QUORUM, Q>`` from Quorum Selection "suspects all quorums ordered
  before Q";
- the two quorum policies under comparison: :class:`EnumerationPolicy`
  (XPaxos' original try-them-all) and :class:`SelectionPolicy` (driven by
  this paper's Quorum Selection);
- clients and a system builder for end-to-end experiments.
"""

from repro.xpaxos.messages import (
    ClientRequest,
    PreparePayload,
    CommitPayload,
    ViewChangePayload,
    NewViewPayload,
    ReplyPayload,
    KIND_REQUEST,
    KIND_PREPARE,
    KIND_COMMIT,
    KIND_VIEWCHANGE,
    KIND_NEWVIEW,
    KIND_REPLY,
)
from repro.xpaxos.state_machine import BankLedger, KeyValueStore, StateMachine
from repro.xpaxos.enumeration import (
    quorum_for_view,
    view_for_quorum,
    rank_of_quorum,
    total_quorums,
)
from repro.xpaxos.quorum_policy import QuorumPolicy, EnumerationPolicy, SelectionPolicy
from repro.xpaxos.replica import XPaxosReplica
from repro.xpaxos.client import XPaxosClient
from repro.xpaxos.system import XPaxosSystem, build_system

__all__ = [
    "ClientRequest",
    "PreparePayload",
    "CommitPayload",
    "ViewChangePayload",
    "NewViewPayload",
    "ReplyPayload",
    "KIND_REQUEST",
    "KIND_PREPARE",
    "KIND_COMMIT",
    "KIND_VIEWCHANGE",
    "KIND_NEWVIEW",
    "KIND_REPLY",
    "KeyValueStore",
    "BankLedger",
    "StateMachine",
    "quorum_for_view",
    "view_for_quorum",
    "rank_of_quorum",
    "total_quorums",
    "QuorumPolicy",
    "EnumerationPolicy",
    "SelectionPolicy",
    "XPaxosReplica",
    "XPaxosClient",
    "XPaxosSystem",
    "build_system",
]
