"""XPaxos as a :class:`~repro.protocol.backend.ProtocolBackend` (E29).

The adapter owns no protocol logic — it packages replica construction,
observation, and message accounting for :mod:`repro.xpaxos.replica` so
worlds, nodes, and benchmarks select it by name.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.protocol.backend import ProtocolBackend, ReplicaStatus, register_backend
from repro.protocol.policy import EnumerationPolicy, SelectionPolicy
from repro.xpaxos import replica as replica_mod
from repro.xpaxos.messages import (
    KIND_CHECKPOINT,
    KIND_COMMIT,
    KIND_NEWVIEW,
    KIND_PREPARE,
    KIND_VIEWCHANGE,
)
from repro.xpaxos.replica import XPaxosReplica


class XPaxosBackend(ProtocolBackend):
    """XFT 2-phase agreement in the active quorum (Figs. 2-3)."""

    name = "xpaxos"
    decision_term = "view"
    fd_group = replica_mod.FD_GROUP
    replica_kinds = (
        KIND_PREPARE,
        KIND_COMMIT,
        KIND_VIEWCHANGE,
        KIND_NEWVIEW,
        KIND_CHECKPOINT,
    )

    def build_replica(
        self,
        host: Any,
        n: int,
        f: int,
        qs_module: Optional[Any] = None,
        *,
        batch_size: int = 1,
        batch_window: float = 0.0,
        checkpoint_interval: Optional[int] = None,
        state_machine: Optional[Any] = None,
    ) -> XPaxosReplica:
        policy = SelectionPolicy(n, f) if qs_module is not None else EnumerationPolicy(n, f)
        return host.add_module(
            XPaxosReplica(
                host, n=n, f=f, policy=policy, qs_module=qs_module,
                batch_size=batch_size, batch_window=batch_window,
                checkpoint_interval=checkpoint_interval,
                state_machine=state_machine,
            )
        )

    def observe(self, replica: XPaxosReplica) -> ReplicaStatus:
        return ReplicaStatus(
            protocol=self.name,
            decision_number=replica.view,
            quorum=replica.quorum,
            leader=replica.leader,
            status=replica.status,
            commits=replica.commits,
            decision_changes=replica.view_changes,
            executed=replica.executed_base + len(replica.executed),
            checkpoints=replica.checkpoints_made,
        )

    def analytic_messages_per_decision(self, quorum_size: int) -> int:
        # PREPARE to q-1 members, then each of the q-1 non-leader members
        # COMMITs to its q-1 peers: (q-1) + (q-1)^2 = q(q-1).
        return quorum_size * (quorum_size - 1)


register_backend(XPaxosBackend())
