"""Closed-loop XPaxos client.

A client occupies a process id above the replica range, signs its
requests, sends each to the replica it believes leads, and accepts a
result once ``f + 1`` replicas reported the same value for the same
request (with ``n = 2f + 1`` that is the whole active quorum).  On
timeout it retransmits as a broadcast to every replica — replicas forward
to their current leader — and learns the current view from replies.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.crypto.authenticator import SignedMessage
from repro.sim.events import TimerHandle
from repro.sim.process import Module, ProcessHost
from repro.util.ids import ProcessId
from repro.xpaxos.enumeration import leader_of_view
from repro.xpaxos.messages import KIND_REPLY, KIND_REQUEST, ClientRequest, ReplyPayload


class XPaxosClient(Module):
    """Submits ``ops`` one at a time; records per-request latency."""

    def __init__(
        self,
        host: ProcessHost,
        n: int,
        f: int,
        ops: Sequence[Tuple[Any, ...]],
        retry_timeout: float = 20.0,
        think_time: float = 0.0,
    ) -> None:
        super().__init__(host)
        self.n = n
        self.f = f
        self.ops: List[Tuple[Any, ...]] = list(ops)
        self.retry_timeout = retry_timeout
        self.think_time = think_time
        self.believed_view = 0
        self.next_sequence = 0
        self.current: Optional[ClientRequest] = None
        self._votes: Dict[Any, set] = {}
        self._sent_at = 0.0
        self._retry_timer: Optional[TimerHandle] = None
        self.started_at = 0.0
        # Results: (sequence, op, result, latency, completion_time).
        self.completed: List[Tuple[int, Tuple[Any, ...], Any, float, float]] = []

    def start(self) -> None:
        self.started_at = self.host.now
        self.host.subscribe(KIND_REPLY, self._on_reply)
        self._next_request()

    # --------------------------------------------------------------- sending

    @property
    def done(self) -> bool:
        return self.current is None and not self.ops

    def _next_request(self) -> None:
        self._cancel_retry()
        if not self.ops:
            self.current = None
            return
        op = self.ops.pop(0)
        self.current = ClientRequest(client=self.pid, sequence=self.next_sequence, op=op)
        self.next_sequence += 1
        self._votes = {}
        self._sent_at = self.host.now
        self._send_current(broadcast=False)
        self._arm_retry(self.current.sequence)

    def _send_current(self, broadcast: bool) -> None:
        if self.current is None:
            return
        signed = self.host.authenticator.sign(self.current)
        if broadcast:
            for replica in range(1, self.n + 1):
                self.host.send(replica, KIND_REQUEST, signed)
        else:
            leader = leader_of_view(self.believed_view, self.n, self.n - self.f)
            self.host.send(leader, KIND_REQUEST, signed)

    def _arm_retry(self, sequence: int) -> None:
        # One live timer chain at a time: superseded chains are cancelled so a
        # long run never accumulates no-op timers in the scheduler heap.
        self._cancel_retry()

        def retry() -> None:
            if self.current is not None and self.current.sequence == sequence:
                self.host.log.append(self.host.now, self.pid, "client.retry", seq=sequence)
                self._send_current(broadcast=True)
                self._arm_retry(sequence)

        self._retry_timer = self.host.set_timer(
            self.retry_timeout, retry, label=f"client-retry@p{self.pid}"
        )

    def _cancel_retry(self) -> None:
        if self._retry_timer is not None:
            self._retry_timer.cancel()
            self._retry_timer = None

    # -------------------------------------------------------------- receiving

    def _on_reply(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage) or not self.host.authenticator.verify(payload):
            return
        reply = payload.payload
        if not isinstance(reply, ReplyPayload) or reply.client != self.pid:
            return
        if reply.replica != payload.signer:
            return
        if reply.view > self.believed_view:
            self.believed_view = reply.view
        if self.current is None or reply.sequence != self.current.sequence:
            return
        votes = self._votes.setdefault(reply.result, set())
        votes.add(reply.replica)
        if len(votes) >= self.f + 1:
            latency = self.host.now - self._sent_at
            self.completed.append(
                (self.current.sequence, self.current.op, reply.result, latency, self.host.now)
            )
            self.host.log.append(
                self.host.now, self.pid, "client.done",
                seq=self.current.sequence, latency=round(latency, 4),
            )
            self.current = None
            self._cancel_retry()
            if self.think_time > 0:
                self.host.set_timer(self.think_time, self._next_request, label="client-think")
            else:
                self._next_request()

    # ------------------------------------------------------------ diagnostics

    def mean_latency(self) -> float:
        if not self.completed:
            return 0.0
        return sum(entry[3] for entry in self.completed) / len(self.completed)

    def throughput(self, until: Optional[float] = None) -> float:
        """Completed requests per time unit between client start and ``until``.

        The window opens at ``started_at`` (when :meth:`start` ran), not at
        t=0, so clients joining a long-running system report their own rate
        rather than one diluted by time they were not alive.
        """
        horizon = until if until is not None else self.host.now
        elapsed = horizon - self.started_at
        if elapsed <= 0:
            return 0.0
        count = sum(1 for entry in self.completed if entry[4] <= horizon)
        return count / elapsed
