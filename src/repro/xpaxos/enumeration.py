"""Compatibility shim: the enumeration moved to ``repro.protocol``.

The view <-> quorum mapping is consumed by every protocol backend (E29:
IBFT numbers its rounds through the same total order), so the
combinatorial (un)ranking lives in :mod:`repro.protocol.enumeration`.
This module keeps the historical import path working.
"""

from repro.protocol.enumeration import (  # noqa: F401
    leader_of_view,
    quorum_for_view,
    rank_of_quorum,
    total_quorums,
    view_for_quorum,
)

__all__ = [
    "leader_of_view",
    "quorum_for_view",
    "rank_of_quorum",
    "total_quorums",
    "view_for_quorum",
]
