"""XPaxos wire payloads.

Every inter-replica payload is wrapped in a
:class:`~repro.crypto.authenticator.SignedMessage`.  Per Section V-A of
the paper, a ``COMMIT`` embeds the full signed ``PREPARE`` it refers to,
so a receiver can (a) adopt the request when the COMMIT overtakes the
PREPARE (Figure 3) and (b) *prove* leader equivocation when two embedded
PREPAREs for the same view/slot differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.crypto.authenticator import SignedMessage
from repro.crypto.digests import digest

KIND_REQUEST = "xp.request"
KIND_PREPARE = "xp.prepare"
KIND_COMMIT = "xp.commit"
KIND_VIEWCHANGE = "xp.viewchange"
KIND_NEWVIEW = "xp.newview"
KIND_REPLY = "xp.reply"
KIND_CHECKPOINT = "xp.checkpoint"


@dataclass(frozen=True)
class ClientRequest:
    """One client operation (op is a small tuple, e.g. ('put', k, v))."""

    client: int
    sequence: int
    op: Tuple[Any, ...]

    def canonical(self):
        return ("request", self.client, self.sequence, self.op)

    def request_id(self) -> Tuple[int, int]:
        return (self.client, self.sequence)


@dataclass(frozen=True)
class PreparePayload:
    """``PREPARE(view, slot, signed_requests)`` from the view's leader.

    ``signed_requests`` is a *batch* of client-signed request envelopes
    (a singleton tuple when batching is off).  A leader cannot fabricate
    operations out of thin air — members verify every client signature
    before accepting the PREPARE, and a PREPARE carrying a forged request
    is a provable commission failure of the leader.
    """

    view: int
    slot: int
    signed_requests: Tuple[SignedMessage, ...]  # client-signed ClientRequests

    @property
    def requests(self) -> Tuple[ClientRequest, ...]:
        return tuple(sm.payload for sm in self.signed_requests)

    def canonical(self):
        def enc(value):
            return value.canonical() if hasattr(value, "canonical") else value

        return (
            "prepare", self.view, self.slot,
            tuple(enc(sm) for sm in self.signed_requests),
        )

    def request_digest(self) -> str:
        return digest(self.canonical())


@dataclass(frozen=True)
class CommitPayload:
    """``COMMIT(view, slot, prepare)`` — carries the signed PREPARE."""

    view: int
    slot: int
    prepare: SignedMessage  # the leader-signed PreparePayload

    def canonical(self):
        # A Byzantine sender may put a non-PREPARE here; it must still be
        # signable/encodable so that receivers can authenticate the COMMIT
        # and then *detect* the sender (Section V-A).
        embedded = (
            self.prepare.canonical()
            if hasattr(self.prepare, "canonical")
            else self.prepare
        )
        return ("commit", self.view, self.slot, embedded)


@dataclass(frozen=True)
class CommitCertificate:
    """Proof that one request committed at one (view, slot).

    ``prepare`` is the leader-signed PREPARE; ``commits`` are the signed
    COMMITs of every non-leader member of that view's quorum (the
    collector signs its own).  Anyone can verify the certificate against
    the public view -> quorum mapping, so view-change state transfer
    cannot be poisoned by a Byzantine participant inventing history.
    """

    prepare: SignedMessage
    commits: Tuple[SignedMessage, ...]

    def canonical(self):
        return (
            "commit-certificate",
            self.prepare.canonical(),
            tuple(c.canonical() for c in self.commits),
        )


def certificate_is_valid(
    certificate: CommitCertificate,
    expected_slot: int,
    quorum_of,
    verify,
) -> bool:
    """Check a commit certificate.

    ``quorum_of(view)`` returns the view's quorum; ``verify`` checks
    signatures.  Valid iff: the PREPARE is signed by the view's leader
    for ``expected_slot`` and carries a client-signed request; every
    non-leader quorum member contributed a signed COMMIT embedding a
    PREPARE with the same request digest.
    """
    prepare = certificate.prepare
    if not isinstance(prepare, SignedMessage) or not verify(prepare):
        return False
    body = prepare.payload
    if not isinstance(body, PreparePayload) or body.slot != expected_slot:
        return False
    if not body.signed_requests:
        return False
    for inner in body.signed_requests:
        if not isinstance(inner, SignedMessage) or not verify(inner):
            return False
        request = inner.payload
        if not isinstance(request, ClientRequest) or inner.signer != request.client:
            return False
    quorum = quorum_of(body.view)
    if prepare.signer != min(quorum):
        return False
    wanted_digest = body.request_digest()
    signers = set()
    for commit in certificate.commits:
        if not isinstance(commit, SignedMessage) or not verify(commit):
            return False
        commit_body = commit.payload
        if not isinstance(commit_body, CommitPayload):
            return False
        if commit_body.view != body.view or commit_body.slot != body.slot:
            return False
        embedded = commit_body.prepare
        if not isinstance(embedded, SignedMessage) or not verify(embedded):
            return False
        embedded_body = embedded.payload
        if not isinstance(embedded_body, PreparePayload):
            return False
        if embedded_body.request_digest() != wanted_digest:
            return False
        if commit.signer not in quorum or commit.signer == prepare.signer:
            return False
        signers.add(commit.signer)
    return signers == quorum - {prepare.signer}


@dataclass(frozen=True)
class CheckpointPayload:
    """One member's vote that the state at ``slot_count`` digests to
    ``state_digest`` (log compaction)."""

    view: int
    slot_count: int
    state_digest: str

    def canonical(self):
        return ("checkpoint", self.view, self.slot_count, self.state_digest)


@dataclass(frozen=True)
class CheckpointCertificate:
    """Signed CHECKPOINT votes from every member of one view's quorum.

    Once formed, every commit certificate before ``slot_count`` can be
    discarded: the snapshot whose digest the certificate pins replaces
    them in view-change state transfer.
    """

    votes: Tuple[SignedMessage, ...]

    @property
    def payload(self) -> "CheckpointPayload":
        return self.votes[0].payload

    def canonical(self):
        def enc(value):
            return value.canonical() if hasattr(value, "canonical") else value

        return ("checkpoint-certificate", tuple(enc(v) for v in self.votes))


def checkpoint_certificate_is_valid(
    certificate: "CheckpointCertificate", quorum_of, verify
) -> bool:
    """All votes verify, agree on (view, slot_count, digest), and come
    from exactly the view's quorum."""
    if not isinstance(certificate, CheckpointCertificate) or not certificate.votes:
        return False
    reference: Optional[CheckpointPayload] = None
    signers = set()
    for vote in certificate.votes:
        if not isinstance(vote, SignedMessage) or not verify(vote):
            return False
        body = vote.payload
        if not isinstance(body, CheckpointPayload):
            return False
        if reference is None:
            reference = body
        elif body != reference:
            return False
        signers.add(vote.signer)
    return signers == quorum_of(reference.view)


@dataclass(frozen=True)
class ViewChangePayload:
    """``VIEW-CHANGE(new_view, committed, prepared)``.

    ``committed`` is the sender's certified execution history: one
    :class:`CommitCertificate` per executed slot, in order.  ``prepared``
    maps slots beyond the prefix to the signed PREPAREs the sender
    accepted for them.  Remaining simplification relative to XPaxos'
    full OSDI'16 protocol is documented in DESIGN.md §5.7.
    """

    new_view: int
    committed: Tuple[CommitCertificate, ...]
    prepared: Tuple[Tuple[int, SignedMessage], ...]
    checkpoint: Optional["CheckpointCertificate"] = None
    snapshot: Optional[Tuple] = None  # digest-pinned by the checkpoint

    def canonical(self):
        # Byzantine senders may put arbitrary values where certificates
        # belong; the payload must still be signable so receivers can
        # authenticate it and then reject the content.
        def enc(value):
            return value.canonical() if hasattr(value, "canonical") else value

        return (
            "view-change",
            self.new_view,
            tuple(enc(cert) for cert in self.committed),
            tuple((slot, enc(sm)) for slot, sm in self.prepared),
            enc(self.checkpoint),
            self.snapshot,
        )


@dataclass(frozen=True)
class NewViewPayload:
    """``NEW-VIEW(view, committed)`` from the new leader (certified)."""

    view: int
    committed: Tuple[CommitCertificate, ...]
    checkpoint: Optional["CheckpointCertificate"] = None
    snapshot: Optional[Tuple] = None

    def canonical(self):
        def enc(value):
            return value.canonical() if hasattr(value, "canonical") else value

        return (
            "new-view",
            self.view,
            tuple(enc(cert) for cert in self.committed),
            enc(self.checkpoint),
            self.snapshot,
        )


@dataclass(frozen=True)
class ReplyPayload:
    """Reply to a client: request id, result, and the executing replica."""

    client: int
    sequence: int
    result: Any
    replica: int
    view: int

    def canonical(self):
        return ("reply", self.client, self.sequence, self.result, self.replica, self.view)


def commit_is_malformed(commit: CommitPayload, verify) -> Optional[str]:
    """Validate a COMMIT's embedded PREPARE (Section V-A change #2).

    ``verify`` is an authenticator-bound callable for SignedMessage.
    Returns a reason string when malformed, ``None`` when acceptable.
    Mismatch of view/slot between COMMIT and embedded PREPARE, a bad
    signature, or a non-PREPARE body all make the *sender* detectable.
    """
    prepare = commit.prepare
    if not isinstance(prepare, SignedMessage):
        return "no-embedded-prepare"
    if not verify(prepare):
        return "bad-prepare-signature"
    body = prepare.payload
    if not isinstance(body, PreparePayload):
        return "embedded-not-a-prepare"
    if body.view != commit.view or body.slot != commit.slot:
        return "view-slot-mismatch"
    return None
