"""Compatibility shim: the quorum policies moved to ``repro.protocol``.

The expectation-issuing + quorum-consumption contract is shared by every
protocol backend now (E29), so :class:`QuorumPolicy` and its two
implementations live in :mod:`repro.protocol.policy`.  This module keeps
the historical import path working for existing callers and tests.
"""

from repro.protocol.policy import (  # noqa: F401
    EnumerationPolicy,
    QuorumPolicy,
    SelectionPolicy,
)

__all__ = ["EnumerationPolicy", "QuorumPolicy", "SelectionPolicy"]
