"""The XPaxos replica: normal case (Figs. 2-3), FD wiring (Sec. V), views.

Normal case in view ``v`` with active quorum ``Q`` and leader
``l = min(Q)`` (Figure 2):

1. the leader assigns the next slot to a client request and sends a
   signed ``PREPARE`` to the quorum;
2. quorum members send a ``COMMIT`` — embedding the signed PREPARE — to
   every other quorum member;
3. a request commits at a member once it holds the PREPARE plus COMMITs
   from every other member (the leader's PREPARE doubles as its COMMIT,
   matching the Figure 2 message pattern), and executes in slot order.

Failure-detector integration follows Section V-A, with the paper's three
subtleties: on receiving/sending a PREPARE, expect a COMMIT from every
other quorum member *except those whose COMMIT already arrived*; a COMMIT
whose embedded PREPARE is missing/invalid makes the *sender* detectable,
and one embedding a *different* validly-signed PREPARE proves leader
equivocation; a COMMIT arriving before its PREPARE (Figure 3) makes the
process adopt the embedded PREPARE, send its own COMMIT, and expect the
PREPARE from the leader.

View changes keep XPaxos' enumeration semantics (Section V-B): view ``v``
runs quorum ``rank v mod C(n, f)``; moving to a selected quorum skips all
quorums ordered before it.  The state-transfer part is a simplified (but
order-safe within the simulated fault model) exchange of signed
``VIEW-CHANGE`` logs merged by the new leader into a ``NEW-VIEW`` — see
DESIGN.md §5.7 for the delta to XPaxos' full OSDI'16 protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.crypto.authenticator import SignedMessage
from repro.obs.observability import NULL_OBS, get_obs
from repro.obs.spans import SPAN_VIEW_CHANGE
from repro.sim.process import Module, ProcessHost
from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId
from repro.crypto.digests import digest
from repro.xpaxos.messages import (
    KIND_CHECKPOINT,
    KIND_COMMIT,
    KIND_NEWVIEW,
    KIND_PREPARE,
    KIND_REPLY,
    KIND_REQUEST,
    KIND_VIEWCHANGE,
    ClientRequest,
    CommitCertificate,
    CommitPayload,
    NewViewPayload,
    PreparePayload,
    ReplyPayload,
    ViewChangePayload,
    CheckpointCertificate,
    CheckpointPayload,
    certificate_is_valid,
    checkpoint_certificate_is_valid,
    commit_is_malformed,
)
from repro.xpaxos.quorum_policy import QuorumPolicy
from repro.xpaxos.state_machine import KeyValueStore, StateMachine

FD_GROUP = "xpaxos"

STATUS_NORMAL = "normal"
STATUS_VIEW_CHANGE = "view-change"


@dataclass
class SlotState:
    """Per-(view, slot) agreement state.

    ``commit_messages`` keeps the *signed* COMMITs (digest-matching only)
    so that a commit certificate — prepare plus every non-leader member's
    COMMIT — can be assembled for view-change state transfer.
    """

    prepare: Optional[SignedMessage] = None
    requests: Tuple[ClientRequest, ...] = ()
    request_digest: str = ""
    commit_messages: Dict[int, SignedMessage] = field(default_factory=dict)
    own_commit_sent: bool = False
    own_commit: Optional[SignedMessage] = None
    committed: bool = False


class XPaxosReplica(Module):
    """One XPaxos replica (process ids ``1..n`` are replicas)."""

    def __init__(
        self,
        host: ProcessHost,
        n: int,
        f: int,
        policy: QuorumPolicy,
        qs_module: Optional[Any] = None,
        batch_size: int = 1,
        batch_window: float = 0.0,
        checkpoint_interval: Optional[int] = None,
        state_machine: Optional[StateMachine] = None,
    ) -> None:
        super().__init__(host)
        if n != 2 * f + 1 and n <= 2 * f:
            raise ConfigurationError(
                f"XPaxos needs n >= 2f + 1; got n={n}, f={f}"
            )
        self.n = n
        self.f = f
        self.q = n - f
        self.policy = policy
        self.qs = qs_module
        if batch_size < 1:
            raise ConfigurationError(f"batch size must be >= 1, got {batch_size}")
        if batch_window < 0:
            raise ConfigurationError(f"batch window must be >= 0, got {batch_window}")
        # Leader-side batching: collect up to batch_size requests (or
        # whatever arrived within batch_window) into one slot.
        self.batch_size = batch_size
        self.batch_window = batch_window
        self._batch_timer_armed = False
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ConfigurationError(
                f"checkpoint interval must be >= 1, got {checkpoint_interval}"
            )
        # Log compaction: every `checkpoint_interval` slots the quorum
        # certifies a state digest; certificates before it are dropped.
        self.checkpoint_interval = checkpoint_interval
        self.checkpoint_slot = 0  # slots covered by the stable checkpoint
        self.checkpoint: Optional[Tuple[CheckpointCertificate, Tuple]] = None
        self._pending_snapshots: Dict[int, Tuple] = {}
        self._ckpt_votes: Dict[Tuple[int, int, str], Dict[int, SignedMessage]] = {}
        self.checkpoints_made = 0
        # --- view state ---
        self.view = 0
        self.status = STATUS_NORMAL
        # --- log & execution state ---
        self.slots: Dict[int, SlotState] = {}
        self.next_slot = 0
        self.kv: StateMachine = state_machine if state_machine is not None else KeyValueStore()
        self._apply_request = getattr(self.kv, "apply_request", None)
        self.executed: List[ClientRequest] = []
        #: Requests covered by the stable checkpoint and pruned from
        #: ``executed`` (service mode only; 0 otherwise).
        self.executed_base = 0
        self.executed_certs: List[Any] = []  # CommitCertificate per slot
        self._executed_ids: Set[Tuple[int, int]] = set()
        self._reply_cache: Dict[Tuple[int, int], Any] = {}
        self.pending: List[SignedMessage] = []  # leader queue of signed requests
        self._queued_ids: Set[Tuple[int, int]] = set()
        # --- view change bookkeeping ---
        self._vc_received: Dict[int, Dict[int, ViewChangePayload]] = {}
        self._newview_done_for: int = -1
        # --- instrumentation ---
        self.view_changes = 0
        self.commits = 0
        self.detected_events: List[Tuple[float, int, str]] = []
        self._execution_cursor = 0
        self._obs = NULL_OBS  # bound in start()

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        self._obs = get_obs(self.host)
        self._obs.add_collector(self._collect_metrics)
        self.host.subscribe(KIND_REQUEST, self._on_request)
        self.host.subscribe(KIND_PREPARE, self._on_prepare)
        self.host.subscribe(KIND_COMMIT, self._on_commit)
        self.host.subscribe(KIND_VIEWCHANGE, self._on_viewchange)
        self.host.subscribe(KIND_NEWVIEW, self._on_newview)
        self.host.subscribe(KIND_CHECKPOINT, self._on_checkpoint)
        if self.host.fd is not None:
            self.host.fd.subscribe_suspected(self._on_suspected)
        if self.qs is not None:
            self.qs.add_quorum_listener(self._on_selected_quorum)

    def _collect_metrics(self, registry) -> None:
        """Snapshot-time collector for the replica's plain-int counters."""
        pid = self.pid
        registry.counter("xp_commits_total", help="operations committed",
                         pid=pid).set(self.commits)
        registry.counter("xp_view_changes_total", help="view changes completed",
                         pid=pid).set(self.view_changes)
        registry.counter("xp_checkpoints_total", help="checkpoints taken",
                         pid=pid).set(self.checkpoints_made)
        registry.gauge("xp_view", help="current view", pid=pid).set(self.view)

    # ---------------------------------------------------------------- helpers

    @property
    def quorum(self) -> FrozenSet[int]:
        return self.policy.quorum_of(self.view)

    @property
    def leader(self) -> ProcessId:
        return self.policy.leader_of(self.view)

    @property
    def is_leader(self) -> bool:
        return self.pid == self.leader

    @property
    def in_quorum(self) -> bool:
        return self.pid in self.quorum

    @property
    def total_slots(self) -> int:
        """Absolute number of committed slots (checkpointed + live)."""
        return self.checkpoint_slot + len(self.executed_certs)

    def _verify(self, message: SignedMessage) -> bool:
        return self.host.authenticator.verify(message)

    def _detect(self, culprit: ProcessId, reason: str) -> None:
        self.detected_events.append((self.host.now, culprit, reason))
        self.host.log.append(self.host.now, self.pid, "xp.detected", target=culprit, reason=reason)
        if self.host.fd is not None:
            self.host.fd.detected(culprit)

    # =================================================================
    # Normal case
    # =================================================================

    def _on_request(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self._verify(payload):
            return
        request = payload.payload
        if not isinstance(request, ClientRequest) or payload.signer != request.client:
            return
        rid = request.request_id()
        if rid in self._reply_cache:
            self._send_reply(request, self._reply_cache[rid])
            return
        if not self.is_leader or self.status != STATUS_NORMAL:
            # Forward to whoever we currently believe leads (clients may
            # address a stale leader or broadcast on retry).
            if self.pid != self.leader and src == request.client:
                self.host.send(self.leader, KIND_REQUEST, payload)
            return
        if rid in self._queued_ids:
            return
        self._queued_ids.add(rid)
        self.pending.append(payload)
        self._propose_pending()

    def _propose_pending(self) -> None:
        """Leader: assign slots to queued requests and send PREPAREs.

        With ``batch_window > 0`` the leader waits (once) for the window
        to fill before proposing, amortizing one slot's agreement cost
        over up to ``batch_size`` requests; otherwise requests are
        proposed immediately in batches of whatever is queued.
        """
        if not self.is_leader or self.status != STATUS_NORMAL:
            return
        if self.batch_window > 0 and 0 < len(self.pending) < self.batch_size:
            # Wait for the window to fill; arrivals while the flush timer
            # is armed simply join the forming batch.  A full batch takes
            # the immediate path below.
            if not self._batch_timer_armed:
                self._batch_timer_armed = True

                def flush() -> None:
                    self._batch_timer_armed = False
                    self._propose_now()

                self.host.set_timer(self.batch_window, flush, label="xp-batch")
            return
        self._propose_now()

    def _propose_now(self) -> None:
        while self.pending:
            batch: List[SignedMessage] = []
            while self.pending and len(batch) < self.batch_size:
                signed_request = self.pending.pop(0)
                if signed_request.payload.request_id() in self._executed_ids:
                    continue
                batch.append(signed_request)
            if not batch:
                return
            slot = self.next_slot
            self.next_slot += 1
            prepare_body = PreparePayload(
                view=self.view, slot=slot, signed_requests=tuple(batch)
            )
            prepare = self.host.authenticator.sign(prepare_body)
            state = self._slot(slot)
            state.prepare = prepare
            state.requests = prepare_body.requests
            state.request_digest = prepare_body.request_digest()
            state.own_commit_sent = True  # the PREPARE is the leader's commit
            for member in sorted(self.quorum - {self.pid}):
                self.host.send(member, KIND_PREPARE, prepare)
            self._expect_commits(slot, prepare_body)
            self._maybe_commit(slot)

    def _slot(self, slot: int) -> SlotState:
        return self.slots.setdefault(slot, SlotState())

    def _expect_commits(self, slot: int, prepare_body: PreparePayload) -> None:
        """Section V-A: on sending/receiving a PREPARE, expect COMMITs.

        Subtlety #1: no expectation for members whose COMMIT for this slot
        already arrived.
        """
        if self.host.fd is None:
            return
        state = self._slot(slot)
        view = prepare_body.view
        for member in sorted(self.quorum):
            if member in (self.pid, self.leader):
                continue
            if member in state.commit_messages:
                continue

            def match(kind: str, payload: Any, member=member, view=view, slot=slot) -> bool:
                return (
                    kind == KIND_COMMIT
                    and isinstance(payload, SignedMessage)
                    and payload.signer == member
                    and isinstance(payload.payload, CommitPayload)
                    and payload.payload.view == view
                    and payload.payload.slot == slot
                )

            self.host.fd.expect(
                source=member,
                predicate=match,
                group=FD_GROUP,
                label=f"commit<-p{member}@v{view}s{slot}",
            )

    def _expect_prepare(self, slot: int, view: int) -> None:
        """Subtlety #3 (Figure 3): COMMIT overtook the PREPARE — expect it."""
        if self.host.fd is None:
            return
        leader = self.leader

        def match(kind: str, payload: Any) -> bool:
            return (
                kind == KIND_PREPARE
                and isinstance(payload, SignedMessage)
                and payload.signer == leader
                and isinstance(payload.payload, PreparePayload)
                and payload.payload.view == view
                and payload.payload.slot == slot
            )

        self.host.fd.expect(
            source=leader,
            predicate=match,
            group=FD_GROUP,
            label=f"prepare<-p{leader}@v{view}s{slot}",
        )

    def _on_prepare(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self._verify(payload):
            return
        body = payload.payload
        if not isinstance(body, PreparePayload):
            return
        if body.view != self.view or self.status != STATUS_NORMAL or not self.in_quorum:
            return
        if payload.signer != self.leader:
            return
        self._accept_prepare(payload, body)

    def _accept_prepare(self, prepare: SignedMessage, body: PreparePayload) -> None:
        state = self._slot(body.slot)
        incoming_digest = body.request_digest()
        if state.prepare is not None:
            if state.request_digest != incoming_digest:
                # Two leader-signed PREPAREs for one (view, slot):
                # equivocation, provable from the two signatures.
                self._detect(self.leader, "prepare-equivocation")
            return
        # A leader cannot invent operations: the PREPARE must embed
        # requests correctly signed by the claimed clients.
        if not body.signed_requests:
            self._detect(prepare.signer, "empty-batch")
            return
        for inner in body.signed_requests:
            if (
                not isinstance(inner, SignedMessage)
                or not self._verify(inner)
                or not isinstance(inner.payload, ClientRequest)
                or inner.signer != inner.payload.client
            ):
                self._detect(prepare.signer, "forged-client-request")
                return
        state.prepare = prepare
        state.requests = body.requests
        state.request_digest = incoming_digest
        self._expect_commits(body.slot, body)
        if not state.own_commit_sent:
            state.own_commit_sent = True
            commit = self.host.authenticator.sign(
                CommitPayload(view=body.view, slot=body.slot, prepare=prepare)
            )
            state.own_commit = commit
            for member in sorted(self.quorum - {self.pid}):
                self.host.send(member, KIND_COMMIT, commit)
        self._maybe_commit(body.slot)

    def _on_commit(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self._verify(payload):
            return
        body = payload.payload
        if not isinstance(body, CommitPayload):
            return
        if body.view != self.view or self.status != STATUS_NORMAL or not self.in_quorum:
            return
        sender = payload.signer
        if sender not in self.quorum or sender == self.leader:
            return
        reason = commit_is_malformed(body, self._verify)
        if reason is not None:
            # Correctly authenticated COMMIT without a valid embedded
            # PREPARE: the sender is provably faulty (Section V-A).
            self._detect(sender, f"malformed-commit:{reason}")
            return
        embedded: PreparePayload = body.prepare.payload
        if body.prepare.signer != self.leader:
            self._detect(sender, "commit-wrong-leader")
            return
        state = self._slot(body.slot)
        embedded_digest = embedded.request_digest()
        if state.prepare is None:
            # Figure 3: the COMMIT overtook the leader's PREPARE.  Record
            # the sender's commit *first* (subtlety #1: no expectation may
            # be issued for a process whose COMMIT already arrived), then
            # adopt the embedded PREPARE, commit ourselves, and expect the
            # leader's copy.
            state.commit_messages[sender] = payload
            self._expect_prepare(body.slot, body.view)
            self._accept_prepare(body.prepare, embedded)
        elif state.request_digest != embedded_digest:
            # Embedded PREPARE differs from ours: both are leader-signed,
            # so the leader equivocated.
            self._detect(self.leader, "prepare-equivocation")
            return
        else:
            state.commit_messages[sender] = payload
        self._maybe_commit(body.slot)

    def _maybe_commit(self, slot: int) -> None:
        state = self._slot(slot)
        if state.committed or state.prepare is None or not state.own_commit_sent:
            return
        if not state.requests:
            return
        needed = self.quorum - {self.pid, self.leader}
        have = {
            member
            for member in state.commit_messages
            if member in self.quorum
        }
        if needed - have:
            return
        state.committed = True
        self.commits += 1
        self.host.log.append(
            self.host.now, self.pid, "xp.commit",
            view=self.view, slot=slot,
            requests=tuple(r.request_id() for r in state.requests),
        )
        self._execute_ready()

    def _certificate_for(self, state: SlotState) -> CommitCertificate:
        """Assemble the commit certificate for a just-committed slot.

        Commits come from every quorum member except the leader; when
        this replica is a follower its own (signed) COMMIT completes the
        set — the leader's commitment is the PREPARE itself.
        """
        commits = [
            state.commit_messages[member]
            for member in sorted(state.commit_messages)
            if member in self.quorum
        ]
        if not self.is_leader and state.own_commit is not None:
            commits.append(state.own_commit)
        return CommitCertificate(prepare=state.prepare, commits=tuple(commits))

    def _execute_ready(self) -> None:
        """Execute the contiguous committed prefix, replying per request."""
        while True:
            slot = self._execution_cursor
            state = self.slots.get(slot)
            if state is None or not state.committed or not state.requests:
                return
            self._apply_batch(state.requests, self._certificate_for(state))
            self._execution_cursor = slot + 1

    def _apply_batch(self, requests, certificate: CommitCertificate) -> None:
        """Execute one committed slot's batch; one certificate per slot."""
        for request in requests:
            self._execute_one(request)
        self.executed_certs.append(certificate)
        self._maybe_checkpoint()

    # =================================================================
    # Checkpointing (log compaction)
    # =================================================================

    def _snapshot(self, slot_count: int) -> Tuple:
        """Digestable snapshot of the application state right now.

        The snapshot keeps the flat request history so a replica adopting
        it can still serve retransmissions and the harness can check
        prefix consistency.  Service state machines carry their own
        per-client dedup table inside ``snapshot_items()``, so their
        snapshots keep only the applied-request *count* — without the
        bound, view-change payloads (which ship the snapshot) grow with
        total history and stall the live event loop long enough to trip
        failure detectors on healthy peers.
        """
        if self._apply_request is not None:
            return (
                "xp-snapshot-svc",
                slot_count,
                self.executed_base + len(self.executed),
                self.kv.snapshot_items(),
                (),
            )
        return (
            "xp-snapshot",
            slot_count,
            tuple(request.canonical() for request in self.executed),
            self.kv.snapshot_items(),
            tuple(sorted(self._reply_cache.items())),
        )

    def _maybe_checkpoint(self) -> None:
        if self.checkpoint_interval is None or self.status != STATUS_NORMAL:
            return
        total = self.total_slots
        if total == 0 or total % self.checkpoint_interval:
            return
        if total in self._pending_snapshots or not self.in_quorum:
            return
        snapshot = self._snapshot(total)
        self._pending_snapshots[total] = snapshot
        body = CheckpointPayload(
            view=self.view, slot_count=total, state_digest=digest(snapshot)
        )
        self.host.broadcast(
            sorted(self.quorum), KIND_CHECKPOINT, self.host.authenticator.sign(body)
        )

    def _on_checkpoint(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self._verify(payload):
            return
        body = payload.payload
        if not isinstance(body, CheckpointPayload):
            return
        if body.view != self.view or payload.signer not in self.quorum:
            return
        key = (body.view, body.slot_count, body.state_digest)
        votes = self._ckpt_votes.setdefault(key, {})
        votes[payload.signer] = payload
        if set(votes) != self.quorum:
            return
        if body.slot_count <= self.checkpoint_slot:
            return
        snapshot = self._pending_snapshots.get(body.slot_count)
        if snapshot is None or digest(snapshot) != body.state_digest:
            return  # our state diverges from the certified digest
        certificate = CheckpointCertificate(
            votes=tuple(votes[member] for member in sorted(votes))
        )
        self._stabilize_checkpoint(certificate, snapshot)

    def _stabilize_checkpoint(
        self, certificate: CheckpointCertificate, snapshot: Tuple
    ) -> None:
        slot_count = certificate.payload.slot_count
        drop = slot_count - self.checkpoint_slot
        self.executed_certs = self.executed_certs[drop:]
        self.checkpoint_slot = slot_count
        self.checkpoint = (certificate, snapshot)
        self.checkpoints_made += 1
        self._pending_snapshots = {
            slots: snap
            for slots, snap in self._pending_snapshots.items()
            if slots > slot_count
        }
        self._ckpt_votes = {
            key: votes
            for key, votes in self._ckpt_votes.items()
            if key[1] > slot_count
        }
        if snapshot[0] == "xp-snapshot-svc":
            # The service dedup table now covers everything up to the
            # snapshot; drop the flat history and its reply-cache entries
            # so replica memory — and view-change payloads — stay bounded.
            covered = max(0, snapshot[2] - self.executed_base)
            for request in self.executed[:covered]:
                rid = request.request_id()
                self._executed_ids.discard(rid)
                self._reply_cache.pop(rid, None)
            del self.executed[:covered]
            self.executed_base = snapshot[2]
        self.host.log.append(
            self.host.now, self.pid, "xp.checkpoint",
            slots=slot_count, live_certs=len(self.executed_certs),
        )

    def _execute_one(self, request: ClientRequest) -> None:
        rid = request.request_id()
        if rid in self._executed_ids:
            result = self._reply_cache.get(rid)
        else:
            # Service state machines dedup per client (at-most-once) and
            # need the request id; plain ones only see the operation.
            if self._apply_request is not None:
                result = self._apply_request(request.client, request.sequence, request.op)
            else:
                result = self.kv.apply(request.op)
            self.executed.append(request)
            self._executed_ids.add(rid)
            self._reply_cache[rid] = result
            self.host.log.append(
                self.host.now, self.pid, "xp.execute", request=rid, total=len(self.executed)
            )
        self._send_reply(request, result)

    def _send_reply(self, request: ClientRequest, result: Any) -> None:
        reply = self.host.authenticator.sign(
            ReplyPayload(
                client=request.client,
                sequence=request.sequence,
                result=result,
                replica=self.pid,
                view=self.view,
            )
        )
        self.host.send(request.client, KIND_REPLY, reply)

    # =================================================================
    # View changes
    # =================================================================

    def _on_suspected(self, suspected: FrozenSet[int]) -> None:
        target = self.policy.next_view_on_suspicion(self.view, suspected)
        if target is not None and target > self.view:
            self._start_view_change(target)

    def _on_selected_quorum(self, event: Any) -> None:
        target = self.policy.view_for_selected_quorum(event.quorum, self.view)
        if target is not None and target > self.view:
            self._start_view_change(target)

    def _acceptable_view(self, target: int) -> bool:
        """Whether to join a view change announced by a peer."""
        if target <= self.view:
            return False
        if self.qs is not None:
            # Selection mode: only views matching the QS module's verdict.
            return self.policy.quorum_of(target) == self.qs.current_quorum
        return True

    def _start_view_change(self, target: int) -> None:
        self.view = target
        self.status = STATUS_VIEW_CHANGE
        self.view_changes += 1
        # Report prepared-but-uncommitted entries *before* clearing the
        # per-view log, so the new leader can re-propose them.
        prepared = self._prepared_entries()
        self.slots = {}
        self.next_slot = self.total_slots
        self._execution_cursor = self.total_slots
        # Requests that were assigned view-local slots but not committed
        # must become acceptable again (clients retransmit them).
        self._queued_ids = {
            signed.payload.request_id() for signed in self.pending
        }
        self.host.log.append(
            self.host.now, self.pid, "xp.viewchange",
            view=target, quorum=tuple(sorted(self.policy.quorum_of(target))),
        )
        self._obs.span(SPAN_VIEW_CHANGE, self.pid, self.host.now, view=target)
        if self.host.fd is not None:
            # Section V-B: during view change processes may legitimately
            # stop sending expected normal-case messages.
            self.host.fd.cancel(group=FD_GROUP)
        vc_body = ViewChangePayload(
            new_view=target,
            committed=tuple(self.executed_certs),
            prepared=prepared,
            checkpoint=self.checkpoint[0] if self.checkpoint else None,
            snapshot=self.checkpoint[1] if self.checkpoint else None,
        )
        signed = self.host.authenticator.sign(vc_body)
        for replica in range(1, self.n + 1):
            if replica != self.pid:
                self.host.send(replica, KIND_VIEWCHANGE, signed)
        self._record_viewchange(self.pid, vc_body)
        if not self.is_leader and self.pid in self.quorum:
            self._expect_newview(target)

    def _prepared_entries(self) -> Tuple[Tuple[int, SignedMessage], ...]:
        entries = []
        for slot in sorted(self.slots):
            state = self.slots[slot]
            if state.prepare is not None and not state.committed:
                entries.append((slot, state.prepare))
        return tuple(entries)

    def _expect_newview(self, view: int) -> None:
        if self.host.fd is None:
            return
        leader = self.policy.leader_of(view)

        def match(kind: str, payload: Any) -> bool:
            return (
                kind == KIND_NEWVIEW
                and isinstance(payload, SignedMessage)
                and payload.signer == leader
                and isinstance(payload.payload, NewViewPayload)
                and payload.payload.view == view
            )

        self.host.fd.expect(
            source=leader, predicate=match, group=FD_GROUP, label=f"newview<-p{leader}@v{view}"
        )

    def _on_viewchange(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self._verify(payload):
            return
        body = payload.payload
        if not isinstance(body, ViewChangePayload):
            return
        sender = payload.signer
        if body.new_view > self.view and self._acceptable_view(body.new_view):
            self._start_view_change(body.new_view)
        self._record_viewchange(sender, body)

    def _record_viewchange(self, sender: ProcessId, body: ViewChangePayload) -> None:
        bucket = self._vc_received.setdefault(body.new_view, {})
        bucket.setdefault(sender, body)
        self._maybe_finish_view_change()

    def _maybe_finish_view_change(self) -> None:
        """New leader: once every quorum member reported, emit NEW-VIEW."""
        if self.status != STATUS_VIEW_CHANGE or not self.is_leader:
            return
        if self._newview_done_for >= self.view:
            return
        bucket = self._vc_received.get(self.view, {})
        if not all(member in bucket for member in self.quorum):
            return
        self._newview_done_for = self.view
        # Pick the longest *certified* history: every entry — checkpoint
        # included — must verify, so a Byzantine member cannot smuggle
        # fabricated requests into the merged state.
        best = ((), None, None)
        best_length = -1
        for vc in bucket.values():
            length = self._history_flat_length(
                vc.committed, vc.checkpoint, vc.snapshot
            )
            if length is not None and length > best_length:
                best_length = length
                best = (vc.committed, vc.checkpoint, vc.snapshot)
        committed, checkpoint, snapshot = best
        newview = self.host.authenticator.sign(
            NewViewPayload(
                view=self.view, committed=committed,
                checkpoint=checkpoint, snapshot=snapshot,
            )
        )
        for member in sorted(self.quorum - {self.pid}):
            self.host.send(member, KIND_NEWVIEW, newview)
        self._install_history(committed, checkpoint, snapshot)
        self.status = STATUS_NORMAL
        self.host.log.append(self.host.now, self.pid, "xp.newview", view=self.view)
        # Re-propose uncommitted prepared requests reported by members.
        reproposals: Dict[Tuple[int, int], SignedMessage] = {}
        for vc in bucket.values():
            for _, prepare in vc.prepared:
                if not isinstance(prepare, SignedMessage) or not self._verify(prepare):
                    continue
                inner = prepare.payload
                if not isinstance(inner, PreparePayload):
                    continue
                for signed_request in inner.signed_requests:
                    if (
                        not isinstance(signed_request, SignedMessage)
                        or not self._verify(signed_request)
                        or not isinstance(signed_request.payload, ClientRequest)
                        or signed_request.signer != signed_request.payload.client
                    ):
                        continue
                    rid = signed_request.payload.request_id()
                    if rid not in self._executed_ids and rid not in self._queued_ids:
                        reproposals[rid] = signed_request
        for rid, signed_request in sorted(reproposals.items()):
            # The request keeps its original client signature.
            self._queued_ids.add(rid)
            self.pending.append(signed_request)
        self._propose_pending()

    def _on_newview(self, kind: str, payload: Any, src: ProcessId) -> None:
        if not isinstance(payload, SignedMessage):
            return
        if self.host.fd is None and not self._verify(payload):
            return
        body = payload.payload
        if not isinstance(body, NewViewPayload):
            return
        if body.view != self.view or payload.signer != self.leader:
            return
        if self.status != STATUS_VIEW_CHANGE:
            return
        if self._history_flat_length(
            body.committed, body.checkpoint, body.snapshot
        ) is None:
            # The leader signed a NEW-VIEW with an uncertified history:
            # provable misbehaviour.
            self._detect(payload.signer, "invalid-newview-certificates")
            return
        self._install_history(body.committed, body.checkpoint, body.snapshot)
        self.status = STATUS_NORMAL
        self.host.log.append(self.host.now, self.pid, "xp.newview", view=self.view)

    def _history_flat_length(
        self,
        committed: Tuple[Any, ...],
        checkpoint: Optional[Any],
        snapshot: Optional[Any],
    ) -> Optional[int]:
        """Validate a (checkpoint, suffix) history; return its flat length.

        ``None`` means invalid: a bad checkpoint certificate, a snapshot
        that does not match the certified digest, or any suffix entry
        without a valid commit certificate for its absolute slot.
        """
        base_slot = 0
        base_requests = 0
        if checkpoint is not None or snapshot is not None:
            if not checkpoint_certificate_is_valid(
                checkpoint, self.policy.quorum_of, self._verify
            ):
                return None
            reference = checkpoint.payload
            if (
                not isinstance(snapshot, tuple)
                or len(snapshot) != 5
                or snapshot[0] not in ("xp-snapshot", "xp-snapshot-svc")
                or snapshot[1] != reference.slot_count
                or digest(snapshot) != reference.state_digest
            ):
                return None
            base_slot = reference.slot_count
            base_requests = (
                snapshot[2]
                if snapshot[0] == "xp-snapshot-svc"
                else len(snapshot[2])
            )
        for index, cert in enumerate(committed):
            if not isinstance(cert, CommitCertificate) or not certificate_is_valid(
                cert, base_slot + index, self.policy.quorum_of, self._verify
            ):
                return None
        suffix_requests = sum(
            len(cert.prepare.payload.requests) for cert in committed
        )
        return base_requests + suffix_requests

    def _adopt_snapshot(self, checkpoint: CheckpointCertificate, snapshot: Tuple) -> None:
        """Jump to a certified checkpoint wholesale (state transfer)."""
        if snapshot[0] == "xp-snapshot-svc":
            # Compact service snapshot: state lives in the KV items (data
            # plus per-client dedup table); the flat history is elided.
            self.executed = []
            self.executed_base = snapshot[2]
            self.kv.restore(snapshot[3], [])
            self._executed_ids = set()
            self._reply_cache = {}
        else:
            canonicals = snapshot[2]
            self.executed = [
                ClientRequest(client=c[1], sequence=c[2], op=tuple(c[3]))
                for c in canonicals
            ]
            self.kv.restore(snapshot[3], [tuple(c[3]) for c in canonicals])
            self._executed_ids = {(c[1], c[2]) for c in canonicals}
            self._reply_cache = dict(snapshot[4])
        self.executed_certs = []
        self.checkpoint_slot = snapshot[1]
        self.checkpoint = (checkpoint, snapshot)
        self.host.log.append(
            self.host.now, self.pid, "xp.snapshot-adopted", slots=snapshot[1]
        )

    def _install_history(
        self,
        committed: Tuple[CommitCertificate, ...],
        checkpoint: Optional[CheckpointCertificate] = None,
        snapshot: Optional[Tuple] = None,
    ) -> None:
        """Adopt the merged certified history (longest-prefix semantics).

        ``committed`` holds one certificate per *slot* (batch) after the
        optional checkpoint; correct histories are batch-aligned, so
        comparison happens on the flattened request sequence.  A replica
        too far behind the checkpoint adopts the snapshot wholesale
        (state transfer); otherwise missing whole batches are applied
        (``_execute_one`` deduplicates by request id in any case).
        """

        def requests_of(cert: CommitCertificate):
            return cert.prepare.payload.requests

        base_slot = checkpoint.payload.slot_count if checkpoint is not None else 0
        if self._apply_request is not None:
            # Service mode: snapshots are compact (counts, not flat
            # history), so longest-history comparison happens on request
            # counts; per-request dedup during replay falls to the state
            # machine's at-most-once table.
            their_base = snapshot[2] if snapshot is not None else 0
            theirs_len = their_base + sum(
                len(requests_of(cert)) for cert in committed
            )
            mine_len = self.executed_base + len(self.executed)
            if theirs_len > mine_len:
                if checkpoint is not None and base_slot > self.total_slots:
                    self._adopt_snapshot(checkpoint, snapshot)
                for index, cert in enumerate(committed):
                    absolute = base_slot + index
                    if absolute < self.total_slots:
                        continue
                    self._apply_batch(requests_of(cert), cert)
            self.next_slot = self.total_slots
            self._execution_cursor = self.total_slots
            return
        snapshot_canonicals = snapshot[2] if snapshot is not None else ()
        mine = tuple(request.canonical() for request in self.executed)
        theirs = tuple(snapshot_canonicals) + tuple(
            request.canonical() for cert in committed for request in requests_of(cert)
        )
        if len(theirs) <= len(mine):
            if theirs != mine[: len(theirs)]:
                self.host.log.append(self.host.now, self.pid, "xp.divergence")
            self.next_slot = self.total_slots
            self._execution_cursor = self.total_slots
            return
        if theirs[: len(mine)] != mine:
            self.host.log.append(self.host.now, self.pid, "xp.divergence")
        if checkpoint is not None and base_slot > self.total_slots:
            self._adopt_snapshot(checkpoint, snapshot)
        for index, cert in enumerate(committed):
            absolute = base_slot + index
            if absolute < self.total_slots:
                continue
            self._apply_batch(requests_of(cert), cert)
        self.next_slot = self.total_slots
        self._execution_cursor = self.total_slots
