"""Replicated applications: the state-machine protocol + implementations.

Replicas are generic over the application: anything implementing
:class:`StateMachine` can be replicated.  Two implementations ship:

- :class:`KeyValueStore` — the default, used throughout the experiments;
- :class:`BankLedger` — accounts with conditional transfers, showing
  operations whose *results* depend on execution order (so reply
  consistency across replicas is a real test, not a formality).
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Tuple

from repro.crypto.digests import digest


class StateMachine(abc.ABC):
    """What a replicated application must provide.

    Determinism contract: ``apply`` must be a pure function of the
    current state and the operation — same history, same results, same
    digests at every replica.
    """

    @abc.abstractmethod
    def apply(self, op: Tuple[Any, ...]) -> Any:
        """Execute one operation, returning the client-visible result."""

    @abc.abstractmethod
    def state_digest(self) -> str:
        """Canonical digest of the full state (checkpoint votes)."""

    @abc.abstractmethod
    def snapshot_items(self) -> Tuple:
        """Stable, canonically-encodable dump for checkpoint snapshots."""

    @abc.abstractmethod
    def restore(self, items, history) -> None:
        """Replace the state from a snapshot dump + operation history."""


class KeyValueStore(StateMachine):
    """Deterministic KV state machine with an execution history.

    Operations (tuples, so they canonically encode):

    - ``("put", key, value)`` -> returns the previous value (or ``None``)
    - ``("get", key)`` -> returns the value (or ``None``)
    - ``("del", key)`` -> returns the deleted value (or ``None``)
    - ``("noop",)`` -> returns ``None`` (view-change filler)

    ``state_digest`` summarizes both data and history so tests can assert
    replicas executed identical request sequences (linearized safety).
    """

    def __init__(self) -> None:
        self._data: Dict[Any, Any] = {}
        self.history: List[Tuple[Any, ...]] = []

    def apply(self, op: Tuple[Any, ...]) -> Any:
        """Execute one operation; unknown ops are rejected as no-ops."""
        self.history.append(op)
        if not op:
            return None
        name = op[0]
        if name == "put" and len(op) == 3:
            previous = self._data.get(op[1])
            self._data[op[1]] = op[2]
            return previous
        if name == "get" and len(op) == 2:
            return self._data.get(op[1])
        if name == "del" and len(op) == 2:
            return self._data.pop(op[1], None)
        if name == "noop":
            return None
        return ("rejected", name)

    def get(self, key: Any) -> Any:
        return self._data.get(key)

    def __len__(self) -> int:
        return len(self._data)

    @property
    def executed_count(self) -> int:
        return len(self.history)

    def state_digest(self) -> str:
        """Digest over data and full history (order-sensitive)."""
        return digest(("kv-state", tuple(sorted(self._data.items())), tuple(self.history)))

    def snapshot_items(self) -> Tuple[Tuple[Any, Any], ...]:
        """Stable dump of the data for checkpoint snapshots."""
        return tuple(sorted(self._data.items()))

    def restore(self, items, history) -> None:
        """Replace data and history from a checkpoint snapshot."""
        self._data = dict(items)
        self.history = [tuple(op) for op in history]


class BankLedger(StateMachine):
    """Accounts with conditional transfers.

    Operations:

    - ``("open", account)`` -> ``True`` if newly opened
    - ``("deposit", account, amount)`` -> new balance (or ``"no-account"``)
    - ``("transfer", src, dst, amount)`` -> ``"ok"`` or ``"insufficient"``
      or ``"no-account"`` — the interesting case: whether a transfer
      succeeds depends on every transfer ordered before it, so replicas
      that disagreed on ordering would visibly disagree on results.
    - ``("balance", account)`` -> balance or ``None``
    """

    def __init__(self) -> None:
        self._accounts: Dict[Any, int] = {}
        self.history: List[Tuple[Any, ...]] = []

    def apply(self, op: Tuple[Any, ...]) -> Any:
        self.history.append(tuple(op))
        if not op:
            return None
        name = op[0]
        if name == "open" and len(op) == 2:
            if op[1] in self._accounts:
                return False
            self._accounts[op[1]] = 0
            return True
        if name == "deposit" and len(op) == 3:
            if op[1] not in self._accounts:
                return "no-account"
            self._accounts[op[1]] += op[2]
            return self._accounts[op[1]]
        if name == "transfer" and len(op) == 4:
            src, dst, amount = op[1], op[2], op[3]
            if src not in self._accounts or dst not in self._accounts:
                return "no-account"
            if self._accounts[src] < amount:
                return "insufficient"
            self._accounts[src] -= amount
            self._accounts[dst] += amount
            return "ok"
        if name == "balance" and len(op) == 2:
            return self._accounts.get(op[1])
        return ("rejected", name)

    def balance(self, account: Any) -> Any:
        return self._accounts.get(account)

    def total_money(self) -> int:
        """Conservation invariant: transfers never create or destroy money."""
        return sum(self._accounts.values())

    def state_digest(self) -> str:
        return digest(
            ("ledger-state", tuple(sorted(self._accounts.items())), tuple(self.history))
        )

    def snapshot_items(self) -> Tuple:
        return tuple(sorted(self._accounts.items()))

    def restore(self, items, history) -> None:
        self._accounts = dict(items)
        self.history = [tuple(op) for op in history]
