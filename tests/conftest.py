"""Shared fixtures and world builders for integration tests.

``build_qs_world`` moved to :mod:`repro.sim.worlds` so the parallel
execution engine's worker processes and the CLI can import it from the
installed package; it is re-exported here because many tests (and the
benchmark harness) import it from ``tests.conftest``.
"""

from __future__ import annotations

import pytest

from repro.sim.worlds import build_qs_world

__all__ = ["build_qs_world"]


@pytest.fixture
def qs_world_5_2():
    """n=5, f=2 Quorum Selection world (the paper's running scale)."""
    return build_qs_world(5, 2)


@pytest.fixture
def fs_world_7_2():
    """n=7=3f+1, f=2 Follower Selection world."""
    return build_qs_world(7, 2, follower_mode=True)
