"""Tests for the programmable adversary engine (E28 tentpole).

Covers the observation snapshot API, the actuation vocabulary and its
crypto/fault-model guards, tagged rule clearing, determinism of the
disarmed hooks (chaos-off traces byte-identical), and the engine's
metric/span families.
"""

import pytest

from repro.adversary.engine import AdversaryEngine, Blackboard, Strategy
from repro.core.observation import observe_process, observe_world
from repro.core.spec import agreement_holds
from repro.obs import SPAN_ADVERSARY_ACTION, metric_value
from repro.util.errors import ConfigurationError
from tests.conftest import build_qs_world


class NullStrategy(Strategy):
    """Observes, acts never; finishes after ``ticks`` observations."""

    name = "null"

    def __init__(self, ticks=3):
        super().__init__()
        self.budget = ticks
        self.views = []

    def on_observe(self, view):
        self.views.append(view)
        self.budget -= 1
        if self.budget <= 0:
            self.done = True


def engine_world(n=6, f=2, seed=3, faulty=(1, 2)):
    sim, modules = build_qs_world(n, f, seed=seed)
    engine = AdversaryEngine(sim, modules, set(faulty))
    return sim, modules, engine


class TestObservation:
    def test_process_view_snapshot(self):
        sim, modules = build_qs_world(5, 2)
        sim.run_until(30.0)
        view = observe_process(modules[3])
        assert view.pid == 3
        assert view.epoch == modules[3].epoch
        assert view.quorum == frozenset(modules[3].qlast)
        assert view.suspecting == frozenset(modules[3].suspecting)

    def test_world_view_agreed_quorum(self):
        sim, modules = build_qs_world(5, 2)
        sim.run_until(30.0)
        view = observe_world(sim.now, modules, frozenset({1, 2}), 2)
        assert view.now == sim.now
        assert view.correct == frozenset({3, 4, 5})
        assert view.agreed_quorum == frozenset(modules[3].qlast)
        assert view.quorum_of(4) == frozenset(modules[4].qlast)

    def test_observation_is_read_only(self):
        """Snapshotting draws no randomness and mutates nothing."""
        sim, modules = build_qs_world(5, 2)
        sim.run_until(20.0)
        before = {pid: (m.qlast, m.epoch, m.matrix.version)
                  for pid, m in modules.items()}
        for _ in range(5):
            observe_world(sim.now, modules, frozenset({1}), 1)
        after = {pid: (m.qlast, m.epoch, m.matrix.version)
                 for pid, m in modules.items()}
        assert before == after


class TestEngineLifecycle:
    def test_rejects_bad_configuration(self):
        sim, modules = build_qs_world(5, 2)
        with pytest.raises(ConfigurationError):
            AdversaryEngine(sim, modules, {1}, tick_period=0.0)
        with pytest.raises(ConfigurationError):
            AdversaryEngine(sim, modules, {99})  # no module for pid 99
        engine = AdversaryEngine(sim, modules, {1})
        with pytest.raises(ConfigurationError):
            engine.install()  # no strategies

    def test_strategy_binds_once_with_child_rng(self):
        _, _, engine = engine_world()
        strategy = engine.add(NullStrategy())
        assert strategy.tag == "null#0"
        assert strategy.rng is not None
        with pytest.raises(ConfigurationError):
            strategy.bind(engine, 1)
        with pytest.raises(ConfigurationError):
            engine.add(strategy)  # already bound

    def test_ticks_until_all_strategies_done(self):
        sim, _, engine = engine_world()
        fast = engine.add(NullStrategy(ticks=2))
        slow = engine.add(NullStrategy(ticks=5))
        engine.install()
        sim.run_until(40.0)
        assert fast.done and slow.done and engine.done
        # Slow kept observing after fast finished.
        assert len(slow.views) == 5
        assert len(fast.views) == 2

    def test_add_after_install_rejected(self):
        _, _, engine = engine_world()
        engine.add(NullStrategy())
        engine.install()
        with pytest.raises(ConfigurationError):
            engine.add(NullStrategy())


class TestActuationGuards:
    def test_actuation_only_through_faulty_processes(self):
        _, _, engine = engine_world(faulty=(1, 2))
        with pytest.raises(ConfigurationError):
            engine.false_suspicion(3, 4)
        with pytest.raises(ConfigurationError):
            engine.sign_row(3, (0, 0, 0, 0, 0, 0, 0))
        with pytest.raises(ConfigurationError):
            engine.send_update(4, object(), [5])

    def test_forged_row_is_signed_with_own_key_only(self):
        """Receivers authenticate injected rows: the signature is p1's."""
        sim, modules, engine = engine_world()
        row = tuple(modules[1].matrix.row(1))
        signed = engine.sign_row(1, row)
        assert signed.signature.signer == 1
        assert sim.host(3).authenticator.verify(signed)

    def test_tagged_rules_clear_independently(self):
        _, _, engine = engine_world()
        engine.omit(1, dsts={3}, tag="a#0")
        engine.delay(1, 5.0, tag="b#0")
        assert len(engine.rules.rules(1)) == 2
        assert engine.clear_rules(1, tag="a#0") == 1
        remaining = engine.rules.rules(1)
        assert len(remaining) == 1 and remaining[0].tag == "b#0"
        assert engine.clear_rules(1) == 1
        assert engine.rules.rules(1) == ()


class TestDeterminism:
    def trace(self, arm_engine, seed=3):
        sim, modules = build_qs_world(6, 2, seed=seed)
        if arm_engine:
            engine = AdversaryEngine(sim, modules, {1, 2})
            engine.add(NullStrategy(ticks=4))
            engine.install()
        sim.run_until(120.0)
        return [
            (e.time, e.process, e.epoch, tuple(sorted(e.quorum)))
            for pid in sorted(modules)
            for e in modules[pid].quorum_events
        ]

    def test_idle_engine_leaves_trace_byte_identical(self):
        """An installed engine whose strategies never act changes nothing:
        observation draws no randomness and the rule layer has no rules."""
        assert self.trace(arm_engine=False) == self.trace(arm_engine=True)

    def test_disarmed_jitter_leaves_trace_byte_identical(self):
        def run(arm, amplitude):
            sim, modules = build_qs_world(6, 2, seed=3)
            if arm:
                sim.network.set_adversary_jitter(amplitude)
            sim.at(10.0, lambda: sim.host(1).crash())
            sim.run_until(120.0)
            return [
                (e.time, e.process, e.epoch, tuple(sorted(e.quorum)))
                for pid in sorted(modules)
                for e in modules[pid].quorum_events
            ]

        plain = run(arm=False, amplitude=0.0)
        assert run(arm=True, amplitude=0.0) == plain
        assert run(arm=True, amplitude=2.0) != plain

    def test_jitter_rejects_negative_amplitude(self):
        sim, _ = build_qs_world(4, 1)
        with pytest.raises(ConfigurationError):
            sim.network.set_adversary_jitter(-1.0)


class TestBlackboard:
    def test_post_get_pop_and_audit_trail(self):
        board = Blackboard()
        board.post("k", (1, 2), by="collusion#0", now=3.0)
        assert board.get("k") == (1, 2)
        assert board.pop("k") == (1, 2)
        assert board.get("k") is None
        assert board.posts == [(3.0, "collusion#0", "k")]


class TestObservability:
    def test_actions_logged_spanned_and_counted(self):
        sim, modules, engine = engine_world()
        engine.add(NullStrategy(ticks=2))
        engine.install()
        sim.at(5.0, lambda: engine.false_suspicion(1, 3, by="test"))
        sim.run_until(60.0)
        assert engine.action_counts["test:false_suspicion"] == 1
        spans = sim.obs.spans.by_name(SPAN_ADVERSARY_ACTION)
        assert any(
            s.attrs["strategy"] == "test" and s.attrs["action"] == "false_suspicion"
            for s in spans
        )
        assert any(
            e.payload.get("action") == "false_suspicion"
            for e in sim.log.events(kind="adv.action")
        )
        snapshot = sim.obs.snapshot()
        assert metric_value(
            snapshot, "adv_actions_total",
            strategy="test", action="false_suspicion",
        ) == 1
        assert metric_value(snapshot, "adv_ticks_total") >= 2
        assert metric_value(snapshot, "adv_strategies_active") == 0

    def test_attack_preserves_agreement(self):
        """Engine actuation is within-model: correct processes still agree."""
        sim, modules, engine = engine_world()
        engine.add(NullStrategy(ticks=1))
        engine.install()
        sim.at(5.0, lambda: engine.false_suspicion(1, 3, by="test"))
        sim.run_until(200.0)
        correct = [modules[p] for p in sim.pids if p not in (1, 2)]
        assert agreement_holds(correct)
        assert 3 not in correct[0].qlast
