"""E28 adversary strategies replayed against protocol backends.

The adversary engine observes and actuates exclusively through the
frozen surfaces — :mod:`repro.core.observation` snapshots in,
QS-module/rule-layer actions out — so the same Byzantine policies that
attack a bare Quorum Selection world must run unmodified against a full
backend system, IBFT included.  The claims under attack are
protocol-independent because they belong to Quorum Selection, not to
the decision engine:

- **Theorem 3 envelope**: with at most ``f`` corrupted processes, no
  correct process issues more than ``f(f+1)`` quorums in one epoch,
  whatever traffic the backend adds to the schedule;
- **agreement**: correct QS modules converge on one quorum, and the
  backend replicas adopt exactly that quorum (checked through the same
  frozen ProcessView the adversary reads);
- **safety + liveness**: non-faulty histories stay prefix-consistent
  and the client workload completes once the attack stops.
"""

import pytest

from repro.adversary.engine import AdversaryEngine
from repro.adversary.strategies import (
    EquivocationStrategy,
    SelectiveOmissionStrategy,
)
from repro.core.observation import observe_world
from repro.core.spec import agreement_holds
from repro.net.parity import thm3_bound
from repro.protocol.backend import backend_names
from repro.protocol.system import build_backend_system

PROTOCOLS = sorted(backend_names())
N, F = 6, 2
FAULTY = frozenset({1, 2})
OPS = 20


@pytest.fixture(params=PROTOCOLS)
def protocol(request):
    return request.param


def attacked_system(protocol, strategies, seed=3, horizon=900.0):
    """One backend system with the engine driving ``strategies`` over it."""
    system = build_backend_system(
        protocol, n=N, f=F, clients=1, seed=seed, client_retry=20.0
    )
    # Teach the system's bookkeeping who is corrupted *before* the engine
    # installs its interceptors (set_interceptor replaces, so the
    # engine's rule-bearing hooks win).
    for pid in sorted(FAULTY):
        system.adversary.corrupt(pid)
    engine = AdversaryEngine(system.sim, system.qs_modules, set(FAULTY), f_max=F)
    for strategy in strategies:
        engine.add(strategy)
    engine.install()
    system.run(horizon)
    return system, engine


def correct_modules(system):
    return [system.qs_modules[p] for p in system.replica_pids if p not in FAULTY]


def assert_qs_claims_hold(system):
    """Theorem 3 envelope + agreement + frozen-API adoption, post-attack."""
    bound = thm3_bound(F)
    for pid in system.replica_pids:
        if pid in FAULTY:
            continue
        assert system.qs_modules[pid].max_quorums_in_any_epoch() <= bound, (
            f"p{pid} exceeded the Theorem 3 envelope f(f+1)={bound}"
        )
    assert agreement_holds(correct_modules(system))

    # The adversary's own lens: the backend replicas run exactly the
    # quorum the frozen observation API reports for their QS module.
    view = observe_world(system.sim.now, system.qs_modules, set(FAULTY), F)
    assert view.agreed_quorum is not None
    for pid in view.correct:
        assert system.observe(pid).quorum == view.processes[pid].quorum


class TestEquivocation:
    def test_conflicting_rows_cannot_break_backend_claims(self, protocol):
        system, engine = attacked_system(
            protocol, [EquivocationStrategy(pid=1, victims=(3, 4))]
        )
        strategy = engine.strategies[0]
        assert strategy.done and strategy.rounds_done == strategy.rounds
        assert engine.action_counts["equivocation:equivocate"] == strategy.rounds

        assert system.total_completed() == OPS
        assert system.histories_consistent()
        assert_qs_claims_hold(system)
        # Gossip (Lemma 1) reunited the equivocator's split row.
        rows = {tuple(m.matrix.row(1)) for m in correct_modules(system)}
        assert len(rows) == 1


class TestSelectiveOmission:
    def test_adaptive_omission_cannot_break_backend_claims(self, protocol):
        system, engine = attacked_system(
            protocol, [SelectiveOmissionStrategy(pid=1, stop_at=120.0)]
        )
        strategy = engine.strategies[0]
        assert strategy.done and strategy.repointed >= 1
        assert engine.rules.rules(1) == ()  # cleaned up at stop_at

        assert system.total_completed() == OPS
        assert system.histories_consistent()
        assert_qs_claims_hold(system)


class TestStackedAttack:
    def test_thm3_envelope_is_protocol_independent(self):
        """The stacked attack lands inside the same envelope on both
        backends — the bound belongs to QS, not to the decision engine."""
        per_protocol = {}
        for protocol in PROTOCOLS:
            system, engine = attacked_system(
                protocol,
                [
                    EquivocationStrategy(pid=1, victims=(3, 4)),
                    SelectiveOmissionStrategy(pid=2, stop_at=120.0),
                ],
            )
            assert engine.done
            assert system.total_completed() == OPS
            assert system.histories_consistent()
            assert_qs_claims_hold(system)
            per_protocol[protocol] = max(
                m.max_quorums_in_any_epoch() for m in correct_modules(system)
            )
        bound = thm3_bound(F)
        assert all(worst <= bound for worst in per_protocol.values()), per_protocol
