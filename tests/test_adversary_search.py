"""Tests for the randomized lower-bound chase (E28 search loop).

Acceptance criteria from the issue, in test form: the canonical config
reproduces Theorem 4 *exactly* (proposed quorums == C(f+2, 2)), every
trial stays inside the Theorem 3 envelope, the search is a pure function
of its seed, and re-running against the same cache serves every trial
without recomputation.
"""

import pytest

from repro.adversary.search import (
    canonical_config,
    chase_bound,
    make_strategy,
    run_attack_case,
)
from repro.adversary.strategies import LowerBoundAttack
from repro.analysis.bounds import thm3_upper_bound, thm4_quorum_count
from repro.analysis.cache import ResultCache
from repro.util.errors import ConfigurationError


class TestAttackCase:
    def test_canonical_reproduces_thm4_exactly(self):
        for f in (1, 2):
            config = canonical_config(f)
            result = run_attack_case(
                seed=3, n=2 * f + 2, f=f,
                strategy=config["strategy"], params=config["params"],
            )
            assert result["proposed_quorums"] == thm4_quorum_count(f)
            assert result["max_epoch"] == 1.0
            assert result["agree"] == 1.0
            assert result["done"] == 1.0
            assert result["thm3_ok"] == 1.0

    def test_result_is_deterministic_floats(self):
        a = run_attack_case(seed=7, n=4, f=1, strategy="forged_rows",
                            params={"rounds": 3}, jitter=0.5)
        b = run_attack_case(seed=7, n=4, f=1, strategy="forged_rows",
                            params={"rounds": 3}, jitter=0.5)
        assert a == b
        assert all(isinstance(v, float) for v in a.values())

    def test_jitter_changes_the_trace(self):
        plain = run_attack_case(seed=3, n=4, f=1)
        jittered = run_attack_case(seed=3, n=4, f=1, jitter=1.5)
        assert plain["trace_fingerprint"] != jittered["trace_fingerprint"]


class TestMakeStrategy:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_strategy("nope", None, 4, 1)

    def test_default_targets_follow_f(self):
        strategy = make_strategy("lower_bound", None, 6, 2)
        assert isinstance(strategy, LowerBoundAttack)
        assert strategy.targets == (3, 4)

    def test_json_lists_become_tuples(self):
        strategy = make_strategy(
            "equivocation", {"victims": [3, 4], "rounds": 2}, 6, 2
        )
        assert strategy._victims_param == (3, 4)


class TestChaseBound:
    def test_validates_budget_and_rounds(self):
        with pytest.raises(ConfigurationError):
            chase_bound([1], budget=0)
        with pytest.raises(ConfigurationError):
            chase_bound([1], rounds=0)

    def test_finds_the_bound_for_small_f(self):
        report = chase_bound([1], seed=3, budget=3, rounds=1)
        entry = report["entries"][0]
        assert entry["thm4_bound"] == thm4_quorum_count(1) == 3
        assert entry["canonical_exact"]
        assert entry["bound_met"]
        assert entry["best"]["proposed_quorums"] >= 3.0

    def test_every_trial_respects_thm3_envelope(self):
        report = chase_bound([1], seed=11, budget=4, rounds=2)
        entry = report["entries"][0]
        assert entry["thm3_ok"]
        for trial in entry["trials"]:
            if trial["ok"]:
                assert trial["result"]["max_changes_per_epoch"] <= \
                    thm3_upper_bound(1)

    def test_same_seed_same_best_attack(self):
        a = chase_bound([1], seed=5, budget=4, rounds=2)
        b = chase_bound([1], seed=5, budget=4, rounds=2)
        ea, eb = a["entries"][0], b["entries"][0]
        assert ea["best"]["trial"] == eb["best"]["trial"]
        assert ea["best"]["strategy"] == eb["best"]["strategy"]
        assert ea["best"]["params"] == eb["best"]["params"]
        assert ea["best"]["result"]["trace_fingerprint"] == \
            eb["best"]["result"]["trace_fingerprint"]
        # And a different seed explores a different trial corpus.
        c = chase_bound([1], seed=6, budget=4, rounds=2)
        configs = lambda r: [
            (t["strategy"], t["params"], t["jitter"])
            for t in r["entries"][0]["trials"]
        ]
        assert configs(a) == configs(b)
        assert configs(a) != configs(c)

    def test_rerun_is_served_from_cache(self, tmp_path):
        first = chase_bound([1], seed=3, budget=3, rounds=2,
                            cache=ResultCache(root=tmp_path))
        second = chase_bound([1], seed=3, budget=3, rounds=2,
                             cache=ResultCache(root=tmp_path))
        e1, e2 = first["entries"][0], second["entries"][0]
        assert e2["cached_trials"] == len(e2["trials"])
        assert e1["best"]["result"] == e2["best"]["result"]

    def test_parallel_equals_serial(self):
        serial = chase_bound([1], seed=3, budget=3, rounds=1, jobs=1)
        parallel = chase_bound([1], seed=3, budget=3, rounds=1, jobs=2)
        strip = lambda r: [
            (t["score"], t["result"]) for t in r["entries"][0]["trials"]
        ]
        assert strip(serial) == strip(parallel)
