"""Tests for the adversary strategy library (E28).

The headline test is the satellite-1 equivalence: the engine port of the
Theorem-4 adversary (``LowerBoundAttack`` with ``pair_order_seed=0``)
must replay the legacy scripted ``repro.failures.LowerBoundStrategy``
*byte-identically* — same fired count, same quorum-change trace
fingerprint — across the props-tier seed matrix.
"""

import os

import pytest

from repro.adversary.engine import AdversaryEngine
from repro.adversary.search import quorum_trace_fingerprint
from repro.adversary.strategies import (
    AdaptiveTimingStrategy,
    CollusionStrategy,
    EquivocationStrategy,
    ForgedSuspicionStrategy,
    LowerBoundAttack,
    SelectiveOmissionStrategy,
    forge_garbage_rows,
)
from repro.analysis.bounds import observed_max_changes_claim
from repro.core.spec import agreement_holds
from repro.failures.strategies import LowerBoundStrategy
from repro.util.errors import ConfigurationError
from repro.util.rand import make_rng
from tests.conftest import build_qs_world

PROP_SEEDS = [
    int(s) for s in os.environ.get("REPRO_PROP_SEEDS", "3,7,11").split(",")
]


class NullChase(LowerBoundAttack):
    """Index placeholder: binds like the chase but never acts."""

    def __init__(self):
        super().__init__(targets=(3, 4))

    def on_observe(self, view):
        self.done = True


def engine_run(strategy, n=6, f=2, seed=3, faulty=(1, 2), horizon=400.0):
    sim, modules = build_qs_world(n, f, seed=seed)
    engine = AdversaryEngine(sim, modules, set(faulty))
    engine.add(strategy)
    engine.install()
    sim.run_until(horizon)
    correct = [modules[p] for p in sim.pids if p not in faulty]
    return sim, modules, engine, correct


class TestLegacyEquivalence:
    """Satellite 1: the engine port replays the scripted path exactly."""

    @pytest.mark.props
    @pytest.mark.parametrize("seed", PROP_SEEDS)
    def test_port_matches_scripted_strategy(self, seed):
        n, f, faulty = 6, 2, {1, 2}
        targets = (3, 4)

        sim_a, modules_a = build_qs_world(n, f, seed=seed)
        legacy = LowerBoundStrategy(
            sim_a, modules_a, faulty=faulty, targets=targets
        )
        legacy.install()
        sim_a.run_until(400.0)

        sim_b, modules_b = build_qs_world(n, f, seed=seed)
        engine = AdversaryEngine(sim_b, modules_b, faulty, f_max=f)
        port = engine.add(LowerBoundAttack(targets=targets))
        engine.install()
        sim_b.run_until(400.0)

        assert len(port.fired) == len(legacy.fired)
        assert quorum_trace_fingerprint(modules_b) == \
            quorum_trace_fingerprint(modules_a)

    def test_port_reaches_thm4_claim(self):
        _, _, engine, correct = engine_run(
            LowerBoundAttack(targets=(3, 4)), horizon=600.0
        )
        assert engine.done
        per_epoch = max(m.max_quorums_in_any_epoch() for m in correct)
        assert per_epoch == observed_max_changes_claim(2)
        assert max(m.epoch for m in correct) == 1
        assert agreement_holds(correct)

    def test_shuffled_pair_order_still_terminates(self):
        _, _, engine, correct = engine_run(
            LowerBoundAttack(targets=(3, 4), pair_order_seed=5), horizon=600.0
        )
        assert engine.done
        assert agreement_holds(correct)

    def test_rejects_faulty_targets(self):
        sim, modules = build_qs_world(6, 2, seed=3)
        engine = AdversaryEngine(sim, modules, {1, 2})
        with pytest.raises(ConfigurationError):
            engine.add(LowerBoundAttack(targets=(1, 3)))


class TestCollusion:
    def test_clique_coordinates_through_blackboard(self):
        _, _, engine, correct = engine_run(
            CollusionStrategy(targets=(3, 4)), horizon=600.0
        )
        strategy = engine.strategies[0]
        assert engine.done
        assert strategy.coordinator == 1
        # Every firing was preceded by a blackboard post of the assignment.
        assert len(engine.blackboard.posts) == len(strategy.fired)
        assert len(strategy.fired) > 0
        assert agreement_holds(correct)

    def test_same_pair_schedule_as_direct_chase(self):
        _, _, direct, _ = engine_run(LowerBoundAttack(targets=(3, 4)),
                                     horizon=600.0)
        _, _, colluding, _ = engine_run(CollusionStrategy(targets=(3, 4)),
                                        horizon=600.0)
        pairs = lambda e: [(s, v) for _, s, v in e.strategies[0].fired]
        assert pairs(colluding) == pairs(direct)


class TestEquivocation:
    def test_conflicting_rows_converge_under_gossip(self):
        sim, modules, engine, correct = engine_run(
            EquivocationStrategy(pid=1, victims=(3, 4)), horizon=300.0
        )
        strategy = engine.strategies[0]
        assert strategy.done and strategy.rounds_done == strategy.rounds
        assert engine.action_counts["equivocation:equivocate"] == strategy.rounds
        assert agreement_holds(correct)
        # Gossip reunited the split views: p1's row is identical everywhere.
        rows = {tuple(m.matrix.row(1)) for m in correct}
        assert len(rows) == 1

    def test_rejects_correct_equivocator(self):
        sim, modules = build_qs_world(6, 2, seed=3)
        engine = AdversaryEngine(sim, modules, {1, 2})
        with pytest.raises(ConfigurationError):
            engine.add(EquivocationStrategy(pid=3))


class TestForgedRows:
    @pytest.mark.props
    @pytest.mark.parametrize("seed", PROP_SEEDS)
    def test_garbage_never_crashes_or_mints_state(self, seed):
        sim, modules, engine, correct = engine_run(
            ForgedSuspicionStrategy(pid=2, valid_rate=0.0, rounds=5),
            seed=seed, horizon=300.0,
        )
        strategy = engine.strategies[0]
        assert strategy.done and strategy.garbage_sent > 0
        assert agreement_holds(correct)
        # No minted state: a correct owner's row elsewhere never exceeds
        # the owner's own row (the forger cannot sign for others).
        for owner in (3, 4, 5, 6):
            own = modules[owner].matrix.row(owner)
            for other in (3, 4, 5, 6):
                got = modules[other].matrix.row(owner)
                assert all(g <= o for g, o in zip(got, own))

    def test_valid_rate_one_sends_only_lies(self):
        _, _, engine, correct = engine_run(
            ForgedSuspicionStrategy(pid=1, valid_rate=1.0, rounds=3),
            horizon=300.0,
        )
        strategy = engine.strategies[0]
        assert strategy.lies_sent == 3 and strategy.garbage_sent == 0
        assert agreement_holds(correct)

    def test_forge_garbage_rows_is_deterministic(self):
        rows_a = forge_garbage_rows(make_rng(9).child("g"), n=6, count=8)
        rows_b = forge_garbage_rows(make_rng(9).child("g"), n=6, count=8)
        assert rows_a == rows_b
        assert len(rows_a) == 8


class TestSelectiveOmission:
    def test_repoints_rules_and_clears_at_stop(self):
        sim, modules, engine, correct = engine_run(
            SelectiveOmissionStrategy(pid=1, stop_at=60.0), horizon=300.0
        )
        strategy = engine.strategies[0]
        assert strategy.done and strategy.repointed >= 1
        assert engine.rules.rules(1) == ()  # cleaned up after itself
        assert agreement_holds(correct)


class TestAdaptiveTiming:
    def test_oscillates_with_quorum_membership(self):
        sim, modules, engine, correct = engine_run(
            AdaptiveTimingStrategy(pid=1, stop_at=120.0), horizon=300.0
        )
        strategy = engine.strategies[0]
        assert strategy.done
        # Armed while p1 sat in the initial quorum, cleared on eviction.
        assert strategy.transitions >= 2
        assert 1 not in correct[0].qlast
        assert agreement_holds(correct)


class TestComposition:
    def test_stacked_strategies_stay_deterministic(self):
        """Chase + two randomized strategies: same seed, same everything."""
        def stacked_run():
            sim, modules = build_qs_world(6, 2, seed=3)
            engine = AdversaryEngine(sim, modules, {1, 2})
            chase = engine.add(LowerBoundAttack(targets=(3, 4)))
            engine.add(ForgedSuspicionStrategy(pid=2, valid_rate=0.5, rounds=3))
            engine.add(EquivocationStrategy(pid=1, victims=(3, 4), rounds=2))
            engine.install()
            sim.run_until(600.0)
            correct = [modules[p] for p in sim.pids if p not in (1, 2)]
            assert agreement_holds(correct)
            return (
                [(s, v) for _, s, v in chase.fired],
                dict(engine.action_counts),
                quorum_trace_fingerprint(modules),
            )

        assert stacked_run() == stacked_run()

    def test_strategy_order_does_not_change_sibling_randomness(self):
        """Each policy's draws come from its (name, index) child stream, so
        the forger rolls the same coins whether or not a chase runs too."""
        def forger_decisions(stack_chase):
            sim, modules = build_qs_world(6, 2, seed=3)
            engine = AdversaryEngine(sim, modules, {1, 2})
            if stack_chase:
                engine.add(LowerBoundAttack(targets=(3, 4)))
                forger = engine.add(
                    ForgedSuspicionStrategy(pid=2, valid_rate=0.5, rounds=4)
                )
            else:
                engine.add(NullChase())
                forger = engine.add(
                    ForgedSuspicionStrategy(pid=2, valid_rate=0.5, rounds=4)
                )
            engine.install()
            sim.run_until(300.0)
            return (forger.lies_sent, forger.garbage_sent)

        assert forger_decisions(True) == forger_decisions(False)
