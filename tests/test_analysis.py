"""Tests for bounds, abstract models, worst-case search, and reporting."""

import pytest

from repro.analysis.abstract import (
    AbstractFollowerSelection,
    AbstractQuorumSelection,
    exhaustive_max_changes,
    greedy_follower_changes,
    greedy_max_changes,
)
from repro.analysis.bounds import (
    cor10_total_bound,
    enumeration_cycle_length,
    observed_max_changes_claim,
    thm3_upper_bound,
    thm4_quorum_count,
    thm9_per_epoch_bound,
)
from repro.analysis.report import Table
from repro.util.errors import ConfigurationError


class TestBoundFormulas:
    def test_thm3(self):
        assert [thm3_upper_bound(f) for f in (1, 2, 3)] == [2, 6, 12]

    def test_thm4(self):
        assert [thm4_quorum_count(f) for f in (1, 2, 3)] == [3, 6, 10]

    def test_claim_is_thm4_minus_initial(self):
        for f in range(1, 8):
            assert observed_max_changes_claim(f) == thm4_quorum_count(f) - 1

    def test_thm9_and_cor10(self):
        assert thm9_per_epoch_bound(2) == 7
        assert cor10_total_bound(2) == 14
        assert cor10_total_bound(3) == 20

    def test_claim_never_exceeds_thm3(self):
        for f in range(1, 20):
            assert observed_max_changes_claim(f) <= thm3_upper_bound(f)

    def test_enumeration_cycle(self):
        assert enumeration_cycle_length(5, 2) == 10
        assert enumeration_cycle_length(9, 4) == 126

    def test_rejects_f_zero(self):
        with pytest.raises(ConfigurationError):
            thm3_upper_bound(0)


class TestAbstractQuorumSelection:
    def test_initial_quorum_is_default(self):
        model = AbstractQuorumSelection(5, 2)
        assert model.quorum == frozenset({1, 2, 3})

    def test_suspicion_inside_quorum_changes_it(self):
        model = AbstractQuorumSelection(5, 2)
        assert model.add_suspicion(1, 2)
        assert model.quorum == frozenset({1, 3, 4})
        assert model.changes == 1

    def test_epoch_exhaustion_raises(self):
        # n=4, q=3: two disjoint edges force a cover of size 2 > f=1, so
        # no size-3 independent set remains — the single-epoch model must
        # refuse rather than silently misreport.
        model = AbstractQuorumSelection(4, 1)
        model.add_suspicion(1, 2)
        with pytest.raises(ConfigurationError):
            model.add_suspicion(3, 4)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            AbstractQuorumSelection(4, 2)


class TestAbstractFollowerSelection:
    def test_leader_changes_on_leader_edge(self):
        model = AbstractFollowerSelection(7, 2)
        assert model.add_suspicion(7, 1)  # faulty 7 suspects leader 1
        assert model.leader > 1
        assert model.leader in model.quorum
        assert len(model.quorum) == 5

    def test_follower_edge_changes_nothing(self):
        model = AbstractFollowerSelection(7, 2)
        assert not model.add_suspicion(4, 5)
        assert model.leader == 1

    def test_rejects_small_n(self):
        with pytest.raises(ConfigurationError):
            AbstractFollowerSelection(6, 2)


class TestWorstCaseSearch:
    @pytest.mark.parametrize("f", [1, 2])
    def test_exhaustive_matches_paper_claim(self, f):
        n = 2 * f + 2
        assert exhaustive_max_changes(n, f) == observed_max_changes_claim(f)

    @pytest.mark.parametrize("f", [1, 2, 3, 4])
    def test_greedy_reaches_claim(self, f):
        assert greedy_max_changes(2 * f + 2, f) == observed_max_changes_claim(f)

    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_greedy_never_exceeds_thm3(self, f):
        assert greedy_max_changes(2 * f + 2, f) <= thm3_upper_bound(f)

    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_follower_greedy_within_thm9(self, f):
        changes = greedy_follower_changes(3 * f + 1, f)
        assert changes <= thm9_per_epoch_bound(f)
        assert changes >= 2 * f  # the leader walk is not trivial

    def test_exhaustive_state_budget_guard(self):
        with pytest.raises(ConfigurationError):
            exhaustive_max_changes(10, 4, faulty={1, 2, 3, 4}, state_budget=10)

    def test_exhaustive_rejects_wrong_faulty_size(self):
        with pytest.raises(ConfigurationError):
            exhaustive_max_changes(6, 2, faulty={1})


class TestTable:
    def test_renders_header_and_rows(self):
        table = Table(["f", "bound"], title="demo")
        table.add_row(1, 3)
        table.add_row(2, 6)
        text = table.render()
        assert "demo" in text
        assert "f" in text.splitlines()[1]
        assert "6" in text

    def test_formats_floats_and_sets(self):
        table = Table(["x"])
        table.add_row(0.5)
        table.add_row(frozenset({3, 1}))
        text = table.render()
        assert "0.500" in text and "{1,3}" in text

    def test_rejects_wrong_arity(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)
