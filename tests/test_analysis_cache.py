"""Tests for the on-disk result cache (DESIGN.md §5.15)."""

import json

import pytest

from repro.analysis.cache import (
    ResultCache,
    canonical_key,
    code_fingerprint,
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=tmp_path / "cache", fingerprint="fp-A")


class TestKeying:
    def test_key_is_canonical_over_kwarg_order(self):
        a = canonical_key("t", {"x": 1, "y": 2}, "fp")
        b = canonical_key("t", {"y": 2, "x": 1}, "fp")
        assert a == b

    def test_key_varies_with_every_component(self):
        base = canonical_key("t", {"x": 1}, "fp")
        assert canonical_key("u", {"x": 1}, "fp") != base
        assert canonical_key("t", {"x": 2}, "fp") != base
        assert canonical_key("t", {"x": 1}, "fp2") != base

    def test_seed_in_kwargs_separates_entries(self):
        assert canonical_key("t", {"seed": 1}, "fp") != \
            canonical_key("t", {"seed": 2}, "fp")

    def test_code_fingerprint_stable_and_hexdigest(self):
        fp = code_fingerprint()
        assert fp == code_fingerprint()
        assert len(fp) == 64
        int(fp, 16)


class TestHitMiss:
    def test_miss_then_hit(self, cache):
        key = cache.key_for("t", {"seed": 1})
        hit, _ = cache.get(key)
        assert not hit
        cache.put(key, {"value": 42})
        hit, value = cache.get(key)
        assert hit and value == {"value": 42}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_persists_across_instances(self, cache):
        key = cache.key_for("t", {"seed": 1})
        cache.put(key, [1, 2, 3])
        reopened = ResultCache(root=cache.root, fingerprint="fp-A")
        hit, value = reopened.get(key)
        assert hit and value == [1, 2, 3]

    def test_fingerprint_change_invalidates(self, cache):
        key = cache.key_for("t", {"seed": 1})
        cache.put(key, "old-code-result")
        changed = ResultCache(root=cache.root, fingerprint="fp-B")
        hit, _ = changed.get(changed.key_for("t", {"seed": 1}))
        assert not hit  # different fingerprint -> different key -> miss

    def test_hit_rate(self, cache):
        key = cache.key_for("t", {})
        cache.get(key)
        cache.put(key, 1)
        cache.get(key)
        cache.get(key)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)


class TestCorruption:
    def test_bad_json_is_a_miss_not_a_crash(self, cache):
        key = cache.key_for("t", {"seed": 1})
        cache.put(key, {"v": 1})
        path = cache.root / f"{key}.json"
        path.write_text("{this is not json")
        hit, _ = cache.get(key)
        assert not hit
        assert cache.stats.corrupt_discarded == 1
        assert not path.exists()  # discarded so the recompute can re-store
        cache.put(key, {"v": 2})
        hit, value = cache.get(key)
        assert hit and value == {"v": 2}

    def test_wrong_schema_is_a_miss(self, cache):
        key = cache.key_for("t", {"seed": 1})
        cache.root.mkdir(parents=True, exist_ok=True)
        (cache.root / f"{key}.json").write_text(json.dumps({"unrelated": 1}))
        hit, _ = cache.get(key)
        assert not hit
        assert cache.stats.corrupt_discarded == 1

    def test_key_mismatch_is_a_miss(self, cache):
        key = cache.key_for("t", {"seed": 1})
        cache.root.mkdir(parents=True, exist_ok=True)
        (cache.root / f"{key}.json").write_text(
            json.dumps({"key": "someone-else", "value": 9})
        )
        hit, _ = cache.get(key)
        assert not hit


class TestEviction:
    def test_oldest_entries_evicted_over_limit(self, tmp_path):
        import os
        import time
        cache = ResultCache(root=tmp_path / "c", fingerprint="fp",
                            max_entries=3)
        keys = [cache.key_for("t", {"seed": s}) for s in range(5)]
        base = time.time() - 100
        for i, key in enumerate(keys):
            cache.put(key, i)
            # deterministic mtimes: older seeds look older on disk
            os.utime(cache.root / f"{key}.json", (base + i, base + i))
        cache.put(cache.key_for("t", {"seed": 99}), 99)
        assert cache.entry_count() == 3
        assert cache.stats.evictions >= 2
        hit, _ = cache.get(keys[0])
        assert not hit  # oldest gone
        hit, value = cache.get(cache.key_for("t", {"seed": 99}))
        assert hit and value == 99  # newest kept

    def test_clear(self, cache):
        for s in range(3):
            cache.put(cache.key_for("t", {"seed": s}), s)
        assert cache.clear() == 3
        assert cache.entry_count() == 0
