"""Tests for the parallel execution engine and engine-backed sweeps.

Process-pool tests use ``jobs=2`` with tiny demo tasks: on a single-CPU
host they exercise correctness (equality, ordering, isolation), not
speed — the speedup claims live in ``benchmarks/bench_e23_parallel_sweep``.
"""

import pytest

from repro.analysis.cache import ResultCache
from repro.analysis.exec import (
    ParallelExecutor,
    TaskSpec,
    resolve_task,
    sweep_task,
)
from repro.analysis.sweeps import PointError, bind_point, grid_sweep, sweep
from repro.analysis.tasks import demo_flaky, demo_linear, demo_sleep
from repro.util.errors import ConfigurationError, ExecutionError


def specs_for(fn, seeds, **kwargs):
    return [TaskSpec.for_function(fn, seed=seed, **kwargs) for seed in seeds]


class TestRegistry:
    def test_registered_function_resolves(self):
        spec = TaskSpec.for_function(demo_linear, seed=3)
        assert spec.task == "demo.linear"
        assert resolve_task(spec) is demo_linear

    def test_unregistered_function_rejected(self):
        def local_metric(seed):
            return {"v": seed}

        with pytest.raises(ConfigurationError, match="not a registered"):
            TaskSpec.for_function(local_metric, seed=1)

    def test_closures_rejected_at_registration(self):
        with pytest.raises(ConfigurationError, match="spawn-safe"):
            def make():
                @sweep_task("bad.closure")
                def inner(seed):
                    return {"v": seed}
            make()

    def test_unknown_task_name_raises(self):
        spec = TaskSpec(task="no.such.task", module="repro.analysis.tasks")
        with pytest.raises(ConfigurationError, match="not found"):
            resolve_task(spec)


class TestInlineExecutor:
    def test_jobs_1_runs_inline_in_order(self):
        results = ParallelExecutor(jobs=1).run(specs_for(demo_linear, [5, 1, 3]))
        assert [r.value["value"] for r in results] == [5.0, 1.0, 3.0]
        assert all(r.ok and not r.cached for r in results)

    def test_inline_failure_is_isolated(self):
        results = ParallelExecutor(jobs=1).run(
            specs_for(demo_flaky, [1, 2, 3], fail_seed=2)
        )
        assert [r.ok for r in results] == [True, False, True]
        assert results[1].error["type"] == "ValueError"
        assert "seed 2" in results[1].error["message"]
        assert "traceback" in results[1].error

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(jobs=0)
        with pytest.raises(ConfigurationError):
            ParallelExecutor(jobs=2, chunk_size=0)


class TestPoolExecutor:
    def test_parallel_equals_inline(self):
        specs = specs_for(demo_linear, [1, 2, 3, 4, 5], scale=2.0)
        inline = ParallelExecutor(jobs=1).run(specs)
        pooled = ParallelExecutor(jobs=2).run(specs)
        assert [r.value for r in pooled] == [r.value for r in inline]

    def test_ordering_independent_of_completion(self):
        # Later submissions sleep less, so they complete first; results
        # must still come back in submission order.
        specs = [
            TaskSpec.for_function(demo_sleep, seed=i, seconds=0.2 - 0.06 * i)
            for i in range(4)
        ]
        results = ParallelExecutor(jobs=2, chunk_size=1).run(specs)
        assert [r.value["value"] for r in results] == [0.0, 1.0, 2.0, 3.0]
        assert [r.index for r in results] == [0, 1, 2, 3]

    def test_worker_failure_isolated_per_task(self):
        results = ParallelExecutor(jobs=2, chunk_size=2).run(
            specs_for(demo_flaky, [1, 2, 3, 4], fail_seed=3)
        )
        assert [r.ok for r in results] == [True, True, False, True]
        assert results[2].error["type"] == "ValueError"


class TestExecutorCache:
    def test_cold_stores_warm_hits(self, tmp_path):
        cache = ResultCache(root=tmp_path / "c", fingerprint="fp")
        specs = specs_for(demo_linear, [1, 2, 3])
        cold = ParallelExecutor(jobs=1, cache=cache).run(specs)
        assert cache.stats.stores == 3 and cache.stats.hits == 0
        warm_cache = ResultCache(root=tmp_path / "c", fingerprint="fp")
        warm = ParallelExecutor(jobs=1, cache=warm_cache).run(specs)
        assert warm_cache.stats.hits == 3 and warm_cache.stats.misses == 0
        assert [r.value for r in warm] == [r.value for r in cold]
        assert all(r.cached for r in warm)

    def test_failures_never_cached(self, tmp_path):
        cache = ResultCache(root=tmp_path / "c", fingerprint="fp")
        specs = specs_for(demo_flaky, [1, 2], fail_seed=2)
        ParallelExecutor(jobs=1, cache=cache).run(specs)
        assert cache.stats.stores == 1  # only seed 1
        retry = ParallelExecutor(jobs=1, cache=cache).run(
            specs_for(demo_flaky, [1, 2], fail_seed=None)
        )
        # seed 1 hits (same kwargs), seed 2's kwargs changed -> recompute
        assert retry[0].cached or retry[0].ok
        assert retry[1].ok

    def test_corrupted_entry_recomputes(self, tmp_path):
        cache = ResultCache(root=tmp_path / "c", fingerprint="fp")
        specs = specs_for(demo_linear, [7])
        ParallelExecutor(jobs=1, cache=cache).run(specs)
        key = cache.key_for(specs[0].task, specs[0].kwargs)
        (cache.root / f"{key}.json").write_text("garbage{{{")
        fresh = ResultCache(root=tmp_path / "c", fingerprint="fp")
        results = ParallelExecutor(jobs=1, cache=fresh).run(specs)
        assert results[0].ok and not results[0].cached
        assert results[0].value == {"value": 7.0}
        assert fresh.stats.corrupt_discarded == 1
        assert fresh.stats.stores == 1  # recomputed value re-banked


class TestSweepEngine:
    def test_serial_path_unchanged_for_plain_callables(self):
        result = sweep(lambda seed: {"a": seed}, seeds=[1, 2])
        assert result["a"].values == (1.0, 2.0)

    def test_parallel_requires_registered_task(self):
        with pytest.raises(ConfigurationError, match="not a registered"):
            sweep(lambda seed: {"a": seed}, seeds=[1, 2], jobs=2)

    def test_parallel_sweep_equals_serial(self):
        serial = sweep(demo_linear, [1, 2, 3])
        parallel = sweep(demo_linear, [1, 2, 3], jobs=2)
        assert parallel == serial

    def test_sweep_failure_raises_execution_error_with_records(self):
        bound = bind_point(demo_flaky, {"fail_seed": 2})
        with pytest.raises(ExecutionError) as excinfo:
            sweep(bound, [1, 2, 3], jobs=2)
        assert excinfo.value.failures
        assert excinfo.value.failures[0]["type"] == "ValueError"

    def test_bound_point_same_callable_serial_and_parallel(self):
        bound = bind_point(demo_linear, {"scale": 3.0})
        assert bound(2) == {"value": 6.0}          # serial call path
        serial = sweep(bound, [1, 2])              # legacy loop
        parallel = sweep(bound, [1, 2], jobs=2)    # engine path
        assert serial == parallel
        assert serial["value"].values == (3.0, 6.0)


class TestGridSweepEngine:
    GRID = [{"scale": 1.0}, {"scale": 2.0}, {"scale": 3.0}]

    def test_grid_parallel_equals_serial(self):
        serial = grid_sweep(demo_linear, self.GRID, [1, 2, 3])
        parallel = grid_sweep(demo_linear, self.GRID, [1, 2, 3], jobs=2)
        assert parallel == serial

    def test_failing_point_recorded_not_fatal(self):
        grid = [{"fail_seed": 2}, {"fail_seed": None}]
        results = grid_sweep(demo_flaky, grid, [1, 2, 3], jobs=2,
                             on_error="record")
        assert isinstance(results[0][1], PointError)
        assert results[0][1].failures[0]["type"] == "ValueError"
        assert "fail_seed" in results[0][1].describe()
        healthy = results[1][1]
        assert healthy["value"].values == (1.0, 2.0, 3.0)

    def test_failing_point_raises_by_default(self):
        grid = [{"fail_seed": 2}]
        with pytest.raises(ExecutionError):
            grid_sweep(demo_flaky, grid, [1, 2, 3], jobs=2)

    def test_serial_record_mode_matches(self):
        grid = [{"fail_seed": 2}, {"fail_seed": None}]
        results = grid_sweep(demo_flaky, grid, [1, 2, 3], on_error="record")
        assert isinstance(results[0][1], PointError)
        assert results[1][1]["value"].values == (1.0, 2.0, 3.0)

    def test_bad_on_error_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_sweep(demo_linear, self.GRID, [1], on_error="explode")

    def test_grid_cache_roundtrip(self, tmp_path):
        cache = ResultCache(root=tmp_path / "c", fingerprint="fp")
        cold = grid_sweep(demo_linear, self.GRID, [1, 2], jobs=1, cache=cache)
        assert cache.stats.stores == 6
        warm_cache = ResultCache(root=tmp_path / "c", fingerprint="fp")
        warm = grid_sweep(demo_linear, self.GRID, [1, 2], jobs=1,
                          cache=warm_cache)
        assert warm == cold
        assert warm_cache.stats.hit_rate == 1.0
