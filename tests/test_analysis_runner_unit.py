"""Unit tests for the analysis runner's result types and helpers."""

import pytest

from repro.analysis.runner import (
    ChurnComparison,
    MessageSavings,
    QsRunResult,
    run_thm4_adversary,
)
from repro.util.errors import ConfigurationError


class TestMessageSavings:
    def test_reductions(self):
        s = MessageSavings(
            f=2, n=7, active_size=5,
            full_messages_per_request=84.0, active_messages_per_request=40.0,
        )
        assert s.total_reduction == pytest.approx(1 - 40 / 84)
        assert s.per_broadcast_reduction == pytest.approx(2 / 6)


class TestQsRunResult:
    def test_fields_roundtrip(self):
        result = QsRunResult(
            n=5, f=2, seed=1, suspicions_fired=3, quorum_changes_total=2,
            max_changes_per_epoch=2, max_epoch=1, final_quorums_agree=True,
            no_suspicion=True,
        )
        assert result.final_quorum is None
        assert result.per_process_changes == {}


class TestThm4RunnerValidation:
    def test_unfinished_adversary_raises(self):
        # Far too little time for the adversary to exhaust its pairs.
        with pytest.raises(ConfigurationError):
            run_thm4_adversary(6, 2, seed=3, duration=2.0)

    def test_custom_faulty_and_targets(self):
        result = run_thm4_adversary(
            6, 2, seed=3, faulty={1, 2}, targets=(3, 4), duration=4000.0
        )
        assert result.suspicions_fired == 5


class TestChurnComparison:
    def test_accessors(self):
        from repro.analysis.runner import run_xpaxos_crash_comparison

        comparison = run_xpaxos_crash_comparison(
            n=3, f=1, crash_pids=(1,), seed=5, duration=600.0,
            requests_per_client=5, clients=1,
        )
        sel, enum = comparison.view_changes()
        assert sel >= 1 and enum >= 1
        done = comparison.completed()
        assert done == (5, 5)
