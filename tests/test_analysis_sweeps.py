"""Tests for sweep statistics."""

import pytest

from repro.analysis.sweeps import SweepSummary, sweep
from repro.util.errors import ConfigurationError


class TestSweepSummary:
    def test_statistics(self):
        summary = SweepSummary(name="x", values=(1.0, 2.0, 3.0))
        assert summary.count == 3
        assert summary.mean == 2.0
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.stdev == pytest.approx(1.0)

    def test_single_value_stdev_zero(self):
        assert SweepSummary(name="x", values=(5.0,)).stdev == 0.0

    def test_describe(self):
        text = SweepSummary(name="lat", values=(1.0, 3.0)).describe()
        assert "lat" in text and "mean=2.000" in text and "n=2" in text


class TestSweep:
    def test_collects_per_metric(self):
        result = sweep(lambda seed: {"a": seed, "b": seed * 2}, seeds=[1, 2, 3])
        assert result["a"].values == (1.0, 2.0, 3.0)
        assert result["b"].mean == 4.0

    def test_rejects_empty_seeds(self):
        with pytest.raises(ConfigurationError):
            sweep(lambda seed: {"a": 1}, seeds=[])

    def test_rejects_inconsistent_metric_names(self):
        def metric(seed):
            return {"a": 1} if seed == 1 else {"b": 2}

        with pytest.raises(ConfigurationError):
            sweep(metric, seeds=[1, 2])

    def test_values_coerced_to_float(self):
        result = sweep(lambda seed: {"count": seed}, seeds=[2])
        assert isinstance(result["count"].values[0], float)
