"""Tests for message tracing and sequence-diagram rendering."""

from repro.analysis.traces import (
    message_sends,
    render_arrow_trace,
    render_sequence_diagram,
)
from repro.sim.latency import FixedLatency
from repro.sim.runtime import Simulation, SimulationConfig


def traced_sim():
    sim = Simulation(SimulationConfig(n=3, seed=1, latency=FixedLatency(1.0)))
    sim.network.trace({"a", "b"})
    sim.start()
    return sim


class TestTracing:
    def test_tracing_off_by_default(self):
        sim = Simulation(SimulationConfig(n=2, seed=1))
        sim.start()
        sim.host(1).send(2, "a", None)
        sim.run_until(5.0)
        assert sim.log.count("net.send") == 0

    def test_traced_kinds_recorded(self):
        sim = traced_sim()
        sim.host(1).send(2, "a", None)
        sim.host(1).send(2, "c", None)  # untraced kind
        sim.run_until(5.0)
        sends = message_sends(sim.log)
        assert sends == [(0.0, 1, 2, "a")]

    def test_trace_none_disables(self):
        sim = traced_sim()
        sim.network.trace(None)
        sim.host(1).send(2, "a", None)
        sim.run_until(5.0)
        assert message_sends(sim.log) == []

    def test_kind_filter_and_until(self):
        sim = traced_sim()
        sim.host(1).send(2, "a", None)
        sim.at(3.0, lambda: sim.host(1).send(2, "b", None))
        sim.run_until(10.0)
        assert len(message_sends(sim.log, kinds={"a"})) == 1
        assert len(message_sends(sim.log, until=1.0)) == 1
        assert len(message_sends(sim.log)) == 2


class TestRendering:
    def test_arrow_trace_format(self):
        sim = traced_sim()
        sim.host(1).send(2, "a", None)
        sim.run_until(5.0)
        text = render_arrow_trace(sim.log)
        assert "p1 --a--> p2" in text

    def test_sequence_diagram_lanes(self):
        sim = traced_sim()
        sim.host(1).send(2, "a", None)
        sim.host(1).send(3, "a", None)
        sim.run_until(5.0)
        text = render_sequence_diagram(sim.log, [1, 2, 3])
        # Broadcast collapses into one row listing both destinations.
        assert "a>2,3" in text
        assert text.splitlines()[0].count("|") == 3

    def test_sequence_diagram_prefix_stripping(self):
        sim = Simulation(SimulationConfig(n=2, seed=1, latency=FixedLatency(1.0)))
        sim.network.trace({"xp.prepare"})
        sim.start()
        sim.host(1).send(2, "xp.prepare", None)
        sim.run_until(5.0)
        text = render_sequence_diagram(sim.log, [1, 2])
        assert "prepare>2" in text
        assert "xp.prepare" not in text

    def test_limit_respected(self):
        sim = traced_sim()
        for i in range(30):
            sim.at(float(i), lambda: sim.host(1).send(2, "a", None))
        sim.run_until(50.0)
        text = render_arrow_trace(sim.log, limit=5)
        assert len(text.splitlines()) == 5

    def test_empty_log_renders(self):
        sim = traced_sim()
        assert render_arrow_trace(sim.log) == ""
        diagram = render_sequence_diagram(sim.log, [1, 2])
        assert "p1" in diagram  # header still present
