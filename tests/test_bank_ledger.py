"""Tests for the BankLedger state machine and pluggable replication."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xpaxos import BankLedger, build_system


class TestLedgerSemantics:
    def setup_method(self):
        self.ledger = BankLedger()
        self.ledger.apply(("open", "a"))
        self.ledger.apply(("open", "b"))
        self.ledger.apply(("deposit", "a", 100))

    def test_open_twice(self):
        assert self.ledger.apply(("open", "a")) is False

    def test_deposit_unknown_account(self):
        assert self.ledger.apply(("deposit", "zz", 5)) == "no-account"

    def test_transfer_ok(self):
        assert self.ledger.apply(("transfer", "a", "b", 60)) == "ok"
        assert self.ledger.balance("a") == 40
        assert self.ledger.balance("b") == 60

    def test_transfer_insufficient(self):
        self.ledger.apply(("transfer", "a", "b", 60))
        assert self.ledger.apply(("transfer", "a", "b", 60)) == "insufficient"

    def test_transfer_unknown(self):
        assert self.ledger.apply(("transfer", "a", "zz", 1)) == "no-account"

    def test_balance_query(self):
        assert self.ledger.apply(("balance", "a")) == 100
        assert self.ledger.apply(("balance", "zz")) is None

    def test_rejects_garbage(self):
        assert self.ledger.apply(("explode",)) == ("rejected", "explode")
        assert self.ledger.apply(()) is None

    def test_conservation(self):
        self.ledger.apply(("transfer", "a", "b", 30))
        assert self.ledger.total_money() == 100

    def test_snapshot_roundtrip(self):
        items = self.ledger.snapshot_items()
        history = list(self.ledger.history)
        clone = BankLedger()
        clone.restore(items, history)
        assert clone.state_digest() == self.ledger.state_digest()
        assert clone.balance("a") == 100

    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.one_of(
            st.tuples(st.just("deposit"), st.sampled_from("ab"), st.integers(1, 50)),
            st.tuples(st.just("transfer"), st.sampled_from("ab"),
                      st.sampled_from("ab"), st.integers(1, 80)),
        ),
        max_size=30,
    ))
    def test_money_conserved_and_non_negative(self, ops):
        ledger = BankLedger()
        ledger.apply(("open", "a"))
        ledger.apply(("open", "b"))
        expected_total = 0
        for op in ops:
            result = ledger.apply(op)
            if op[0] == "deposit" and result != "no-account":
                expected_total += op[2]
        assert ledger.total_money() == expected_total
        assert ledger.balance("a") >= 0 and ledger.balance("b") >= 0


class TestReplicatedLedger:
    def test_replicated_results_and_digests_agree(self):
        ops = [
            ("open", "alice"), ("open", "bob"), ("deposit", "alice", 100),
            ("transfer", "alice", "bob", 60), ("transfer", "alice", "bob", 60),
            ("balance", "bob"),
        ]
        system = build_system(
            n=5, f=2, clients=1, seed=7,
            client_ops=[ops], state_machine_factory=BankLedger,
        )
        system.run(300.0)
        client = list(system.clients.values())[0]
        results = [entry[2] for entry in client.completed]
        assert results == [True, True, 100, "ok", "insufficient", 60]
        digests = {system.replicas[p].kv.state_digest() for p in (1, 2, 3)}
        assert len(digests) == 1

    def test_ledger_survives_leader_crash_with_checkpoints(self):
        ops = [("open", "acct")] + [("deposit", "acct", 1) for _ in range(24)]
        system = build_system(
            n=5, f=2, mode="selection", clients=1, seed=9,
            client_ops=[ops], state_machine_factory=BankLedger,
            checkpoint_interval=5, client_think_time=3.0,
        )
        system.adversary.crash(1, at=40.0)
        system.run(1200.0)
        assert system.total_completed() == 25
        balances = {
            replica.kv.balance("acct")
            for replica in system.correct_replicas()
            if len(replica.executed) == 25
        }
        assert balances == {24}
        for replica in system.correct_replicas():
            assert replica.kv.total_money() in (0, 24)  # passive or caught up
