"""Edge-case tests for the PBFT and BChain baselines."""

from repro.baselines.bchain import build_bchain_cluster
from repro.baselines.pbft import build_pbft_cluster
from repro.failures.adversary import Adversary


class TestPbftEdgeCases:
    def test_request_to_non_leader_is_forwarded(self):
        cluster = build_pbft_cluster(n=4, f=1, clients=1, requests_per_client=3, seed=2)
        # Point the client at a non-leader replica.
        client = list(cluster.clients.values())[0]
        client.leader = 3
        cluster.run(200.0)
        assert cluster.total_completed() == 3

    def test_duplicate_request_not_reexecuted(self):
        cluster = build_pbft_cluster(n=4, f=1, clients=1, requests_per_client=3, seed=2)
        cluster.run(200.0)
        replica = cluster.replicas[1]
        executed_before = len(replica.executed)
        # Replay the client's first signed request directly at the leader.
        client_host = cluster.sim.host(5)
        from repro.baselines.pbft import KIND_PBFT_REQUEST
        from repro.xpaxos.messages import ClientRequest

        replay = client_host.authenticator.sign(
            ClientRequest(client=5, sequence=0, op=("put", "k0-0", 0))
        )
        client_host.send(1, KIND_PBFT_REQUEST, replay)
        cluster.run(300.0)
        assert len(replica.executed) == executed_before

    def test_forged_request_ignored(self):
        cluster = build_pbft_cluster(n=4, f=1, clients=1, requests_per_client=0, seed=2)
        cluster.sim.start()
        from repro.baselines.pbft import KIND_PBFT_REQUEST
        from repro.xpaxos.messages import ClientRequest

        replica_host = cluster.sim.host(2)  # signs as itself, claims client 5
        forged = replica_host.authenticator.sign(
            ClientRequest(client=5, sequence=0, op=("put", "evil", 1))
        )
        replica_host.send(1, KIND_PBFT_REQUEST, forged)
        cluster.run(100.0)
        assert all(len(r.executed) == 0 for r in cluster.replicas.values())

    def test_conflicting_phase_votes_ignored(self):
        # A vote whose digest conflicts with the accepted request must not
        # count towards any threshold.
        cluster = build_pbft_cluster(n=4, f=1, clients=1, requests_per_client=1, seed=2)
        cluster.run(100.0)
        assert cluster.total_completed() == 1
        replica = cluster.replicas[2]
        from repro.baselines.pbft import PhasePayload

        state = replica.slots[0]
        before = len(state.prepares)
        replica._on_phase(
            "pbft.prepare",
            cluster.sim.host(3).authenticator.sign(
                PhasePayload("prepare", 0, 0, "deadbeef")
            ),
            3,
        )
        assert len(state.prepares) == before


class TestBChainEdgeCases:
    def test_client_retry_after_rechain(self):
        cluster = build_bchain_cluster(n=7, f=2, clients=1, requests_per_client=5,
                                       seed=5, ack_timeout=6.0)
        adversary = Adversary(cluster.sim)
        adversary.omit_links(2, kinds={"bc.chain"}, start=5.0)
        cluster.run(900.0)
        # In-flight requests at re-chain time were recovered by client
        # retransmission.
        assert cluster.total_completed() == 5

    def test_duplicate_request_replies_from_cache(self):
        cluster = build_bchain_cluster(n=7, f=2, clients=1, requests_per_client=3, seed=5)
        cluster.run(200.0)
        head = cluster.replicas[1]
        executed_before = len(head.executed)
        from repro.baselines.bchain import KIND_BC_REQUEST
        from repro.xpaxos.messages import ClientRequest

        client_host = cluster.sim.host(8)
        replay = client_host.authenticator.sign(
            ClientRequest(client=8, sequence=0, op=("put", "k0-0", 0))
        )
        client_host.send(1, KIND_BC_REQUEST, replay)
        cluster.run(300.0)
        assert len(head.executed) == executed_before

    def test_rechain_from_non_head_rejected(self):
        cluster = build_bchain_cluster(n=7, f=2, clients=1, requests_per_client=1, seed=5)
        cluster.sim.start()
        from repro.baselines.bchain import KIND_BC_RECHAIN, RechainPayload

        impostor = cluster.sim.host(4)
        bogus = impostor.authenticator.sign(
            RechainPayload(epoch=5, chain=(4, 5, 6, 7, 1))
        )
        for pid in range(1, 8):
            if pid != 4:
                impostor.send(pid, KIND_BC_RECHAIN, bogus)
        cluster.run(100.0)
        assert cluster.replicas[2].chain == (1, 2, 3, 4, 5)
        assert cluster.replicas[2].epoch == 0
