"""Tests for the PBFT and BChain baselines."""

import pytest

from repro.baselines.bchain import build_bchain_cluster
from repro.baselines.pbft import build_pbft_cluster
from repro.failures.adversary import Adversary
from repro.util.errors import ConfigurationError


class TestPbftFullBroadcast:
    def test_completes_workload(self):
        cluster = build_pbft_cluster(n=4, f=1, clients=1, requests_per_client=10, seed=2)
        cluster.run(300.0)
        assert cluster.total_completed() == 10

    def test_all_replicas_execute(self):
        cluster = build_pbft_cluster(n=4, f=1, clients=1, requests_per_client=5, seed=2)
        cluster.run(200.0)
        assert all(len(r.executed) == 5 for r in cluster.replicas.values())

    def test_message_count_matches_pattern(self):
        # Per request: PP (n-1) + PREPARE (n-1)^2 + COMMIT n(n-1).
        n, requests = 4, 10
        cluster = build_pbft_cluster(n=n, f=1, clients=1, requests_per_client=requests, seed=2)
        cluster.run(300.0)
        expected = requests * ((n - 1) + (n - 1) ** 2 + n * (n - 1))
        assert cluster.inter_replica_messages() == expected

    def test_histories_identical(self):
        cluster = build_pbft_cluster(n=4, f=1, clients=2, requests_per_client=5, seed=3)
        cluster.run(300.0)
        digests = {r.kv.state_digest() for r in cluster.replicas.values()}
        assert len(digests) == 1


class TestPbftActiveQuorum:
    def test_completes_with_active_quorum(self):
        cluster = build_pbft_cluster(
            n=7, f=2, active=range(1, 6), clients=1, requests_per_client=10, seed=2
        )
        cluster.run(300.0)
        assert cluster.total_completed() == 10

    def test_passive_replicas_send_nothing(self):
        cluster = build_pbft_cluster(
            n=7, f=2, active=range(1, 6), clients=1, requests_per_client=5, seed=2
        )
        cluster.run(200.0)
        for passive in (6, 7):
            sent = sum(
                count
                for (src, _), count in cluster.sim.stats.sent_by_link.items()
                if src == passive
            )
            assert sent == 0

    def test_message_count_matches_restricted_pattern(self):
        # Active size a: PP (a-1) + PREPARE (a-1)^2 + COMMIT a(a-1).
        a, requests = 5, 10
        cluster = build_pbft_cluster(
            n=7, f=2, active=range(1, 6), clients=1, requests_per_client=requests, seed=2
        )
        cluster.run(300.0)
        expected = requests * ((a - 1) + (a - 1) ** 2 + a * (a - 1))
        assert cluster.inter_replica_messages() == expected

    def test_rejects_too_small_active_set(self):
        with pytest.raises(ConfigurationError):
            build_pbft_cluster(n=7, f=2, active=range(1, 5))

    def test_small_group_needs_explicit_thresholds(self):
        with pytest.raises(ConfigurationError):
            build_pbft_cluster(n=5, f=2)
        cluster = build_pbft_cluster(
            n=5, f=2, prepare_quorum=2, commit_quorum=3,
            clients=1, requests_per_client=5, seed=2,
        )
        cluster.run(200.0)
        assert cluster.total_completed() == 5


class TestBChain:
    def test_fault_free_chain(self):
        cluster = build_bchain_cluster(n=7, f=2, clients=1, requests_per_client=10, seed=5)
        cluster.run(400.0)
        assert cluster.total_completed() == 10
        assert cluster.total_rechains() == 0

    def test_chain_message_count(self):
        # Per request: CHAIN down (len-1) + ACK up (len-1).
        cluster = build_bchain_cluster(n=7, f=2, clients=1, requests_per_client=10, seed=5)
        cluster.run(400.0)
        chain_len = 2 * 2 + 1
        assert cluster.inter_replica_messages() == 10 * 2 * (chain_len - 1)

    def test_mute_member_ejected_within_two_rechains(self):
        cluster = build_bchain_cluster(n=7, f=2, clients=1, requests_per_client=10, seed=5)
        adversary = Adversary(cluster.sim)
        adversary.omit_links(3, kinds={"bc.chain"}, start=20.0)
        cluster.run(900.0)
        assert cluster.total_completed() == 10
        assert cluster.total_rechains() <= 2
        assert 3 not in cluster.replicas[1].chain

    def test_rechain_uses_standby(self):
        cluster = build_bchain_cluster(n=7, f=2, clients=1, requests_per_client=10, seed=5)
        adversary = Adversary(cluster.sim)
        adversary.omit_links(3, kinds={"bc.chain"}, start=20.0)
        cluster.run(900.0)
        chain = cluster.replicas[1].chain
        # A standby (6 or 7) was promoted into the chain.
        assert set(chain) & {6, 7}

    def test_tail_mute_ejected(self):
        cluster = build_bchain_cluster(n=7, f=2, clients=1, requests_per_client=10, seed=6)
        adversary = Adversary(cluster.sim)
        adversary.omit_links(5, kinds={"bc.ack"}, start=20.0)
        cluster.run(900.0)
        assert cluster.total_completed() == 10
        assert 5 not in cluster.replicas[1].chain

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            build_bchain_cluster(n=6, f=2)
