"""Tests for the BChain + Chain Selection integration."""

import pytest

from repro.baselines.bchain_cs import build_bchain_cs_cluster
from repro.failures.adversary import Adversary
from repro.util.errors import ConfigurationError


class TestFaultFree:
    def test_completes_workload(self):
        cluster = build_bchain_cs_cluster(n=7, f=2, clients=1, requests_per_client=10, seed=5)
        cluster.run(400.0)
        assert cluster.total_completed() == 10
        assert cluster.total_reconfigurations() == 0
        assert cluster.current_chain() == (1, 2, 3, 4, 5)

    def test_every_chain_member_executes(self):
        cluster = build_bchain_cs_cluster(n=7, f=2, clients=1, requests_per_client=5, seed=5)
        cluster.run(300.0)
        for pid in cluster.current_chain():
            assert len(cluster.replicas[pid].executed) == 5
        # Off-chain replicas stay passive.
        for pid in (6, 7):
            assert len(cluster.replicas[pid].executed) == 0

    def test_histories_identical_on_chain(self):
        cluster = build_bchain_cs_cluster(n=7, f=2, clients=2, requests_per_client=5, seed=6)
        cluster.run(400.0)
        digests = {
            cluster.replicas[pid].kv.state_digest() for pid in cluster.current_chain()
        }
        assert len(digests) == 1


class TestFaulty:
    def test_forward_muting_member_neutralized(self):
        cluster = build_bchain_cs_cluster(n=7, f=2, clients=1, requests_per_client=10, seed=5)
        adversary = Adversary(cluster.sim)
        adversary.omit_links(3, kinds={"bcs.chain"}, start=20.0)
        cluster.run(900.0)
        assert cluster.total_completed() == 10
        chain = cluster.current_chain()
        # p3 either left the chain or sits at the tail, where it never
        # needs to forward — Chain Selection's link-level remedy.
        assert 3 not in chain or chain[-1] == 3

    def test_no_external_standby_needed_at_n_2f_plus_1(self):
        # Unlike blame-based BChain, Chain Selection works without any
        # spare replicas: n = 2f + 1, every process is always in the chain,
        # reconfiguration just reorders.
        cluster = build_bchain_cs_cluster(n=5, f=2, clients=1, requests_per_client=10, seed=7)
        adversary = Adversary(cluster.sim)
        adversary.omit_links(2, kinds={"bcs.chain"}, start=20.0)
        cluster.run(1200.0)
        assert cluster.total_completed() == 10
        chain = cluster.current_chain()
        assert len(chain) == 3
        assert 2 not in chain or chain[-1] == 2

    def test_crash_of_chain_member(self):
        cluster = build_bchain_cs_cluster(n=7, f=2, clients=1, requests_per_client=10, seed=8)
        adversary = Adversary(cluster.sim)
        adversary.crash(2, at=30.0)
        cluster.run(900.0)
        assert cluster.total_completed() == 10
        assert 2 not in cluster.current_chain()

    def test_reconfigurations_bounded(self):
        cluster = build_bchain_cs_cluster(n=7, f=2, clients=1, requests_per_client=10, seed=5)
        adversary = Adversary(cluster.sim)
        adversary.omit_links(3, kinds={"bcs.chain"}, start=20.0)
        cluster.run(900.0)
        # A single muted forwarder cannot cause unbounded churn.
        assert cluster.total_reconfigurations() <= 6

    def test_stale_chain_traffic_ignored(self):
        # After reconfiguration, messages carrying the old chain tuple are
        # dropped: no duplicate execution, histories stay consistent.
        cluster = build_bchain_cs_cluster(n=7, f=2, clients=1, requests_per_client=10, seed=5)
        adversary = Adversary(cluster.sim)
        adversary.omit_links(3, kinds={"bcs.chain"}, start=20.0)
        cluster.run(900.0)
        for pid, replica in cluster.replicas.items():
            ids = [r.request_id() for r in replica.executed]
            assert len(ids) == len(set(ids))


class TestConfiguration:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            build_bchain_cs_cluster(n=4, f=2)
