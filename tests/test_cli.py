"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["thm4"])
        assert args.f == 2 and args.seed == 3


class TestCommands:
    def test_bounds(self, capsys):
        assert main(["bounds", "--f-max", "3"]) == 0
        out = capsys.readouterr().out
        assert "Thm 3" in out and "Cor 10" in out
        assert out.count("\n") >= 5

    def test_worst_case_f1(self, capsys):
        assert main(["worst-case", "--f", "1"]) == 0
        out = capsys.readouterr().out
        assert "exhaustive" in out and "greedy" in out

    def test_thm4_f1(self, capsys):
        assert main(["thm4", "--f", "1"]) == 0
        out = capsys.readouterr().out
        assert "suspicions fired" in out
        assert "True / True" in out

    def test_savings_small(self, capsys):
        assert main(["savings", "--f-max", "1"]) == 0
        out = capsys.readouterr().out
        assert "3f+1" in out and "2f+1" in out

    def test_crash_compare_f1(self, capsys):
        assert main(["crash-compare", "--f", "1"]) == 0
        out = capsys.readouterr().out
        assert "quorum selection" in out and "enumeration" in out


class TestSweepCommand:
    def test_sweep_serial_no_cache(self, capsys):
        assert main(["sweep", "--cases", "5:2", "--seeds", "3,7",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "E17 crash grid" in out and "jobs=1" in out
        assert "cache=off" in out

    def test_sweep_cache_cold_then_warm(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["sweep", "--cases", "5:2", "--seeds", "3",
                "--cache-dir", cache_dir]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "misses=1" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "hits=1" in warm and "hit rate 100%" in warm

    def test_sweep_rejects_malformed_cases(self, capsys):
        assert main(["sweep", "--cases", "5-2", "--no-cache"]) == 2
        assert "--cases" in capsys.readouterr().err

    def test_sweep_rejects_empty_seeds(self, capsys):
        assert main(["sweep", "--seeds", "", "--no-cache"]) == 2

    def test_sweep_rejects_nonpositive_jobs(self, capsys):
        assert main(["sweep", "--cases", "5:2", "--jobs", "0",
                     "--no-cache"]) == 2
        assert "--jobs" in capsys.readouterr().err


class TestHygiene:
    """Invalid arguments exit non-zero with a message, never a traceback."""

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.startswith("repro ")

    @pytest.mark.parametrize(
        "argv",
        [
            ["thm4", "--f", "0"],
            ["worst-case", "--f", "0"],
            ["crash-compare", "--f", "-1"],
            ["bounds", "--f-max", "0"],
            ["savings", "--f-max", "0"],
        ],
    )
    def test_nonpositive_f_rejected(self, argv, capsys):
        assert main(argv) == 2
        assert "f" in capsys.readouterr().err


class TestClusterCommand:
    """Validation-only paths: nothing here launches processes."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["cluster", "--n", "4", "--f", "2"],  # q = n-f must exceed f
            ["cluster", "--n", "5", "--f", "1", "--kill", "9@1"],  # bad pid
            ["cluster", "--n", "5", "--f", "1", "--kill", "nope"],  # bad format
            ["cluster", "--n", "5", "--f", "1", "--duration", "5",
             "--kill", "1@5"],  # outside the run window
            ["cluster", "--n", "5", "--f", "1", "--kill", "1@1",
             "--recover", "1@3", "--kill-mode", "process"],  # no state left
        ],
    )
    def test_invalid_cluster_combos_exit_2(self, argv, capsys):
        assert main(argv) == 2
        assert capsys.readouterr().err.strip()

    @pytest.mark.parametrize(
        "argv",
        [
            ["node", "--pid", "9", "--n", "5", "--f", "1"],  # pid out of range
            ["node", "--pid", "1", "--n", "4", "--f", "2"],  # q <= f
            ["node", "--pid", "1", "--n", "5", "--f", "1",
             "--peers", "1=garbage"],  # unparseable peer map
            ["node", "--pid", "1", "--n", "5", "--f", "1",
             "--duration", "-1"],  # negative duration
        ],
    )
    def test_invalid_node_combos_exit_2(self, argv, capsys):
        assert main(argv) == 2
        assert capsys.readouterr().err.strip()


class TestLoadgenSharding:
    """Validation-only paths: nothing here launches clusters."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["loadgen", "--shards", "0"],
            ["loadgen", "--shards", "-1"],
            ["loadgen", "--shards", "2", "--kill-shard", "2",
             "--kill-leader-at", "10"],
            ["loadgen", "--shards", "2", "--kill-shard", "-1"],
        ],
    )
    def test_invalid_shard_combos_exit_2(self, argv, capsys):
        assert main(argv) == 2
        assert capsys.readouterr().err.strip()

    def test_sim_sharded_smoke(self, capsys):
        assert main([
            "loadgen", "--runtime", "sim", "--shards", "2",
            "--clients", "4", "--duration", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 shards" in out
        assert "at_most_once=True" in out


class TestMetricsMultiSnapshot:
    def _snapshot(self, tmp_path, name, seed):
        path = tmp_path / name
        assert main([
            "metrics", "sim", "--n", "4", "--f", "1", "--seed", str(seed),
            "--duration", "20", "--render", "json", "--out", str(path),
        ]) == 0
        return path

    def test_render_merges_several_snapshots(self, tmp_path, capsys):
        import json as jsonlib

        a = self._snapshot(tmp_path, "a.json", 3)
        b = self._snapshot(tmp_path, "b.json", 7)
        capsys.readouterr()
        assert main([
            "metrics", "render", str(a), str(b), "--render", "json",
        ]) == 0
        merged = jsonlib.loads(capsys.readouterr().out)
        single = jsonlib.loads(a.read_text())
        assert merged["schema"] == single["schema"]

        # Counters sum across snapshots: the merged total must be at
        # least either input's alone.
        def counter_total(snapshot):
            return sum(
                series["value"]
                for series in snapshot["metrics"]
                if series["type"] == "counter"
            )

        assert counter_total(merged) >= counter_total(single)

    def test_diff_accepts_comma_separated_sides(self, tmp_path, capsys):
        a = self._snapshot(tmp_path, "a.json", 3)
        b = self._snapshot(tmp_path, "b.json", 7)
        capsys.readouterr()
        assert main([
            "metrics", "diff", f"{a},{b}", f"{a},{b}", "--render", "json",
        ]) == 0
        # Identical merged sides diff to zero everywhere.
        import json as jsonlib

        delta = jsonlib.loads(capsys.readouterr().out)
        for series in delta["metrics"]:
            if series["type"] == "counter":
                assert series["value"] == 0

    def test_render_rejects_a_non_snapshot_file(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        assert main(["metrics", "render", str(bogus)]) == 2
        assert capsys.readouterr().err.strip()


class TestAdversaryCommand:
    def test_attack_reports_the_bound(self, capsys):
        assert main(["adversary", "attack", "--f", "1"]) == 0
        out = capsys.readouterr().out
        assert "proposed quorums" in out and "Thm 4 count" in out

    def test_attack_json_is_machine_readable(self, capsys):
        import json as json_module

        assert main(["adversary", "attack", "--f", "1", "--json"]) == 0
        result = json_module.loads(capsys.readouterr().out)
        assert result["proposed_quorums"] == 3.0
        assert result["agree"] == 1.0

    def test_attack_accepts_strategy_params(self, capsys):
        assert main([
            "adversary", "attack", "--f", "1", "--strategy", "forged_rows",
            "--params", '{"rounds": 2}',
        ]) == 0
        assert "forged_rows" in capsys.readouterr().out

    def test_search_meets_bound_for_f1(self, capsys):
        assert main([
            "adversary", "search", "--f-values", "1",
            "--budget", "3", "--rounds", "1", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "Lower-bound chase" in out and "lower_bound" in out

    def test_search_cache_warm_on_rerun(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["adversary", "search", "--f-values", "1", "--budget", "3",
                "--rounds", "1", "--cache-dir", cache_dir]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "misses=0" in warm and "misses=0" not in cold

    @pytest.mark.parametrize("argv", [
        ["adversary", "attack", "--f", "0"],
        ["adversary", "attack", "--strategy", "nope"],
        ["adversary", "attack", "--params", "{not json"],
        ["adversary", "attack", "--f", "1", "--strategy", "equivocation",
         "--params", '{"bogus_kwarg": 1}'],
        ["adversary", "search", "--budget", "0"],
        ["adversary", "search", "--rounds", "0"],
        ["adversary", "search", "--jobs", "0"],
        ["adversary", "search", "--f-values", "1,x"],
        ["adversary", "search", "--f-values", "0"],
    ])
    def test_invalid_adversary_combos_exit_2(self, argv, capsys):
        assert main(argv) == 2
        assert capsys.readouterr().err.startswith("error:")
