"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["thm4"])
        assert args.f == 2 and args.seed == 3


class TestCommands:
    def test_bounds(self, capsys):
        assert main(["bounds", "--f-max", "3"]) == 0
        out = capsys.readouterr().out
        assert "Thm 3" in out and "Cor 10" in out
        assert out.count("\n") >= 5

    def test_worst_case_f1(self, capsys):
        assert main(["worst-case", "--f", "1"]) == 0
        out = capsys.readouterr().out
        assert "exhaustive" in out and "greedy" in out

    def test_thm4_f1(self, capsys):
        assert main(["thm4", "--f", "1"]) == 0
        out = capsys.readouterr().out
        assert "suspicions fired" in out
        assert "True / True" in out

    def test_savings_small(self, capsys):
        assert main(["savings", "--f-max", "1"]) == 0
        out = capsys.readouterr().out
        assert "3f+1" in out and "2f+1" in out

    def test_crash_compare_f1(self, capsys):
        assert main(["crash-compare", "--f", "1"]) == 0
        out = capsys.readouterr().out
        assert "quorum selection" in out and "enumeration" in out
