"""Tests for the Chain Selection extension (future work of Section X)."""

import pytest

from repro.analysis.abstract import AbstractChainSelection, greedy_chain_changes
from repro.analysis.bounds import observed_max_changes_claim
from repro.core.chain_selection import ChainSelectionModule
from repro.core.spec import agreement_holds, no_link_suspicion_holds
from repro.failures.adversary import Adversary
from repro.failures.strategies import FalseSuspicionInjector
from repro.fd.detector import FailureDetector
from repro.fd.heartbeat import HeartbeatModule
from repro.graphs.chain_path import (
    has_chain,
    is_valid_chain,
    lex_first_chain,
    sensitive_pairs,
)
from repro.graphs.independent_set import has_independent_set
from repro.graphs.suspect_graph import SuspectGraph
from repro.sim.runtime import Simulation, SimulationConfig
from repro.util.errors import ConfigurationError


def build_cs_world(n, f, seed=3):
    sim = Simulation(SimulationConfig(n=n, seed=seed, gst=0.0, delta=1.0))
    modules = {}
    for pid in sim.pids:
        host = sim.host(pid)
        FailureDetector(host)
        host.add_module(HeartbeatModule(host, n=n, period=2.0))
        modules[pid] = host.add_module(ChainSelectionModule(host, n=n, f=f))
    return sim, modules


class TestChainPath:
    def test_empty_graph_identity_chain(self):
        assert lex_first_chain(SuspectGraph(5), 3) == (1, 2, 3)

    def test_avoids_consecutive_edges(self):
        graph = SuspectGraph(5, [(1, 2)])
        chain = lex_first_chain(graph, 3)
        assert chain == (1, 3, 2)
        assert is_valid_chain(chain, graph)

    def test_chain_weaker_than_independent_set(self):
        # Two disjoint edges on 4 nodes: no 3-IS, but a 3-chain exists.
        graph = SuspectGraph(4, [(1, 2), (3, 4)])
        assert not has_independent_set(graph, 3)
        assert has_chain(graph, 3)

    def test_no_chain_in_dense_graph(self):
        # Complete graph: only singleton chains.
        import itertools

        graph = SuspectGraph(4, list(itertools.combinations(range(1, 5), 2)))
        assert has_chain(graph, 1)
        assert not has_chain(graph, 2)

    def test_zero_and_oversized(self):
        graph = SuspectGraph(3)
        assert lex_first_chain(graph, 0) == ()
        assert lex_first_chain(graph, 4) is None
        with pytest.raises(ConfigurationError):
            lex_first_chain(graph, -1)

    def test_sensitive_pairs_normalized(self):
        assert sensitive_pairs((2, 1, 3)) == [(1, 2), (1, 3)]

    def test_is_valid_chain_rejects_bad(self):
        graph = SuspectGraph(4, [(1, 2)])
        assert not is_valid_chain((1, 2, 3), graph)   # adjacent suspicion
        assert not is_valid_chain((1, 1, 3), graph)   # duplicate
        assert not is_valid_chain((1, 3, 9), graph)   # out of range
        assert is_valid_chain((2, 4, 1), graph)

    def test_independent_set_is_always_a_chain(self):
        graph = SuspectGraph(6, [(1, 2), (2, 3), (4, 5)])
        from repro.graphs.independent_set import lex_first_independent_set

        independent = lex_first_independent_set(graph, 3)
        assert is_valid_chain(tuple(sorted(independent)), graph)


class TestAbstractChainSelection:
    def test_reorder_without_membership_change(self):
        model = AbstractChainSelection(5, 2)
        assert model.chain == (1, 2, 3)
        changed = model.add_suspicion(1, 2)
        assert changed
        assert model.chain == (1, 3, 2)  # same members, new order

    def test_membership_change_when_needed(self):
        model = AbstractChainSelection(5, 2)
        model.add_suspicion(1, 2)
        model.add_suspicion(1, 3)   # 1 conflicts with both others
        assert 4 in model.chain or 5 in model.chain or model.chain[0] != 1

    def test_greedy_membership_matches_qs_claim(self):
        for f in (1, 2, 3):
            result = greedy_chain_changes(2 * f + 2, f)
            assert result.membership_changes == observed_max_changes_claim(f)
            assert result.total_changes >= result.membership_changes

    def test_final_chain_excludes_faulty(self):
        result = greedy_chain_changes(6, 2)
        assert not set(result.final_chain) & {1, 2}


class TestChainSelectionModule:
    def test_initial_chain(self):
        _, modules = build_cs_world(5, 2)
        assert modules[1].chain == (1, 2, 3)
        assert modules[1].head == 1 and modules[1].tail == 3

    def test_crash_of_chain_member(self):
        sim, modules = build_cs_world(5, 2)
        sim.at(10.0, lambda: sim.host(2).crash())
        sim.run_until(120.0)
        correct = [modules[p] for p in (1, 3, 4, 5)]
        chains = {m.chain for m in correct}
        assert len(chains) == 1
        final = chains.pop()
        assert 2 not in final
        assert agreement_holds(correct)
        assert no_link_suspicion_holds(correct)

    def test_link_suspicion_reorders_only(self):
        # p1 falsely suspects p2 (a current link): lex-first re-selection
        # keeps the same members in a new order — cheaper than a full
        # membership change.
        sim, modules = build_cs_world(5, 2)
        sim.at(10.0, lambda: FalseSuspicionInjector(modules[1]).suspect(2))
        sim.run_until(120.0)
        correct = [modules[p] for p in (2, 3, 4, 5)]
        chains = {m.chain for m in correct}
        assert chains == {(1, 3, 2)}
        assert no_link_suspicion_holds(correct)

    def test_non_adjacent_suspicion_ignored(self):
        # (1,3) are non-adjacent in (1,2,3): the chain must not change.
        sim, modules = build_cs_world(5, 2)
        sim.at(10.0, lambda: FalseSuspicionInjector(modules[1]).suspect(3))
        sim.run_until(120.0)
        assert all(modules[p].chain == (1, 2, 3) for p in (2, 3, 4, 5))
        assert all(modules[p].total_quorums_issued() == 0 for p in (2, 3, 4, 5))

    def test_denser_graphs_than_algorithm1_tolerated(self):
        # Force disjoint-edge suspicions that kill every independent set
        # of size q but leave a chain: the epoch must NOT advance.
        sim, modules = build_cs_world(4, 1)
        sim.at(10.0, lambda: FalseSuspicionInjector(modules[1]).suspect(2))
        sim.at(20.0, lambda: FalseSuspicionInjector(modules[3]).suspect(4))
        sim.run_until(120.0)
        module = modules[2]
        graph = module.matrix.build_suspect_graph(1)
        assert not has_independent_set(graph, 3)
        assert all(modules[p].epoch == 1 for p in (1, 2, 3, 4))
        chains = {modules[p].chain for p in (1, 2, 3, 4)}
        assert len(chains) == 1
        assert is_valid_chain(chains.pop(), graph)

    def test_per_link_omission_splits_chain_link(self):
        sim, modules = build_cs_world(5, 2)
        adversary = Adversary(sim)
        adversary.omit_links(2, dsts={3}, kinds={"heartbeat"}, start=10.0)
        sim.run_until(150.0)
        correct = [modules[p] for p in (1, 3, 4, 5)]
        chains = {m.chain for m in correct}
        assert len(chains) == 1
        final = chains.pop()
        assert (2, 3) not in sensitive_pairs(final)
        assert no_link_suspicion_holds(correct)

    def test_quorum_event_carries_head_as_leader(self):
        sim, modules = build_cs_world(5, 2)
        events = []
        modules[4].add_quorum_listener(events.append)
        sim.at(10.0, lambda: sim.host(1).crash())
        sim.run_until(120.0)
        assert events
        last = events[-1]
        assert last.leader == modules[4].chain[0]
        assert last.quorum == frozenset(modules[4].chain)
