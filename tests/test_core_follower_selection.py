"""Tests for Algorithm 2 — Follower Selection."""

import pytest

from repro.core.follower_selection import FollowerSelectionModule
from repro.core.messages import KIND_FOLLOWERS, FollowersPayload
from repro.core.spec import (
    agreement_holds,
    no_leader_suspicion_holds,
    termination_holds,
)
from repro.failures.adversary import Adversary
from repro.failures.strategies import FalseSuspicionInjector
from repro.util.errors import ConfigurationError
from tests.conftest import build_qs_world


class TestConfiguration:
    def test_rejects_n_not_above_3f(self, qs_world_5_2):
        sim, _ = qs_world_5_2
        with pytest.raises(ConfigurationError):
            FollowerSelectionModule(sim.host(1), n=6, f=2)

    def test_initial_state(self, fs_world_7_2):
        _, modules = fs_world_7_2
        module = modules[1]
        assert module.leader == 1
        assert module.stable is True
        assert module.qlast == frozenset({1, 2, 3, 4, 5})


class TestFaultFree:
    def test_no_changes(self, fs_world_7_2):
        sim, modules = fs_world_7_2
        sim.run_until(100.0)
        assert all(m.total_quorums_issued() == 0 for m in modules.values())
        assert all(m.leader == 1 for m in modules.values())
        assert no_leader_suspicion_holds(list(modules.values()))


class TestLeaderCrash:
    def test_crashed_leader_replaced(self, fs_world_7_2):
        sim, modules = fs_world_7_2
        sim.at(10.0, lambda: sim.host(1).crash())
        sim.run_until(200.0)
        correct = [modules[p] for p in range(2, 8)]
        assert agreement_holds(correct)
        leader = correct[0].leader
        assert leader != 1
        assert 1 not in correct[0].qlast or True  # p1 may be P3-excluded
        assert no_leader_suspicion_holds(correct)
        assert termination_holds(correct, after=150.0)

    def test_quorum_has_right_size_and_leader(self, fs_world_7_2):
        sim, modules = fs_world_7_2
        sim.at(10.0, lambda: sim.host(1).crash())
        sim.run_until(200.0)
        module = modules[3]
        assert len(module.qlast) == module.q
        assert module.leader in module.qlast


class TestFollowerCrash:
    def test_crashed_follower_leaves_leader_alone(self, fs_world_7_2):
        # A crash of a follower is suspected by everyone incl. the leader;
        # the leader-suspects-follower edge forces a leader change too.
        sim, modules = fs_world_7_2
        sim.at(10.0, lambda: sim.host(4).crash())
        sim.run_until(200.0)
        correct = [modules[p] for p in (1, 2, 3, 5, 6, 7)]
        assert agreement_holds(correct)
        assert no_leader_suspicion_holds(correct)
        assert 4 not in correct[0].qlast


class TestFalseSuspicionOfLeader:
    def test_leader_moves_up(self, fs_world_7_2):
        sim, modules = fs_world_7_2
        sim.at(10.0, lambda: FalseSuspicionInjector(modules[7]).suspect(1))
        sim.run_until(200.0)
        correct = [modules[p] for p in range(1, 7)]
        assert agreement_holds(correct)
        assert correct[0].leader > 1

    def test_follower_follower_suspicion_ignored(self, fs_world_7_2):
        # Suspicion between two followers does not (necessarily) change
        # the leader: line 18 keeps the quorum when l_L is unchanged.
        sim, modules = fs_world_7_2
        sim.at(10.0, lambda: FalseSuspicionInjector(modules[4]).suspect(5))
        sim.run_until(200.0)
        correct = [modules[p] for p in range(1, 8) if p != 4]
        assert all(m.leader == 1 for m in correct)
        assert all(m.total_quorums_issued() == 0 for m in correct)


class TestFollowersMessageVerification:
    def _run_with_leader_payload(self, make_payload, seed=3):
        """Crash p1 so p3+ become leader-hungry, then have the new leader
        be Byzantine: intercept its FOLLOWERS broadcast via rewriting."""
        sim, modules = build_qs_world(7, 2, follower_mode=True, seed=seed)
        # We simulate the malformed message by injecting directly from p2
        # in the current epoch after p1 crashes and p2 region changes...
        return sim, modules

    def test_malformed_followers_detected(self, fs_world_7_2):
        sim, modules = fs_world_7_2
        byz = sim.host(7)

        def inject_bogus():
            # p7 claims leadership it does not hold with a bogus line
            # subgraph; receivers must not accept, and if p7 *were* the
            # current leader they would DETECT it.  Here sender != leader
            # so the message is simply ignored.
            payload = FollowersPayload(
                followers=(1, 2, 3, 4), line_edges=(), epoch=1
            )
            signed = byz.authenticator.sign(payload)
            for dst in range(1, 7):
                byz.send(dst, KIND_FOLLOWERS, signed)

        sim.at(10.0, inject_bogus)
        sim.run_until(100.0)
        correct = [modules[p] for p in range(1, 7)]
        assert all(m.leader == 1 for m in correct)
        assert all(m.qlast == frozenset({1, 2, 3, 4, 5}) for m in correct)

    def test_wrong_size_followers_is_malformed(self, fs_world_7_2):
        _, modules = fs_world_7_2
        module = modules[2]
        body = FollowersPayload(followers=(2, 3), line_edges=(), epoch=1)
        assert not module._well_formed(body, sender=1)

    def test_leader_in_followers_is_malformed(self, fs_world_7_2):
        _, modules = fs_world_7_2
        module = modules[2]
        body = FollowersPayload(followers=(1, 2, 3, 4), line_edges=(), epoch=1)
        assert not module._well_formed(body, sender=1)

    def test_line_edges_must_exist_locally(self, fs_world_7_2):
        _, modules = fs_world_7_2
        module = modules[2]
        body = FollowersPayload(
            followers=(2, 3, 4, 5), line_edges=((1, 2),), epoch=1
        )
        # Edge (1,2) not in p2's (empty) suspect graph: Definition 3b fails.
        assert not module._well_formed(body, sender=3)

    def test_wellformed_empty_line_default_leader(self, fs_world_7_2):
        _, modules = fs_world_7_2
        module = modules[2]
        body = FollowersPayload(followers=(2, 3, 4, 5), line_edges=(), epoch=1)
        assert module._well_formed(body, sender=1)

    def test_duplicate_follower_ids_malformed(self, fs_world_7_2):
        _, modules = fs_world_7_2
        module = modules[2]
        body = FollowersPayload(followers=(2, 2, 3, 4), line_edges=(), epoch=1)
        assert not module._well_formed(body, sender=1)

    def test_out_of_range_follower_malformed(self, fs_world_7_2):
        _, modules = fs_world_7_2
        module = modules[2]
        body = FollowersPayload(followers=(2, 3, 4, 9), line_edges=(), epoch=1)
        assert not module._well_formed(body, sender=1)


class TestEquivocationDetection:
    def test_two_different_followers_messages_detected(self):
        # A Byzantine *current leader* equivocates: after stabilization on
        # itself as leader, it sends two conflicting FOLLOWERS messages
        # for its epoch; receivers detect it permanently.
        sim, modules = build_qs_world(7, 2, follower_mode=True, seed=5)
        byz = sim.host(1)  # default leader is Byzantine

        def equivocate():
            module = modules[1]
            line_edges = ()
            a = FollowersPayload(followers=(2, 3, 4, 5), line_edges=line_edges, epoch=1)
            b = FollowersPayload(followers=(2, 3, 4, 6), line_edges=line_edges, epoch=1)
            # qlast is currently the default {1..5} and stable=True at
            # receivers, so a *different* quorum claim is equivocation
            # (Algorithm 2 line 31).
            byz.send(2, KIND_FOLLOWERS, byz.authenticator.sign(b))
            byz.send(3, KIND_FOLLOWERS, byz.authenticator.sign(a))

        sim.at(10.0, equivocate)
        sim.run_until(150.0)
        # p2 received a quorum claim conflicting with its stable QLast.
        assert 1 in sim.host(2).fd.suspected
        assert sim.log.count("fs.detected", process=2) >= 1
