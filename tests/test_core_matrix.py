"""Tests for the eventually consistent suspicion matrix (Section VI-A)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.suspicion_matrix import SuspicionMatrix
from repro.util.errors import ConfigurationError

# Strategy: a batch of row updates (suspector, row-values) for n=4.
N = 4
row_values = st.lists(st.integers(0, 5), min_size=N, max_size=N)
updates = st.lists(
    st.tuples(st.integers(1, N), row_values), min_size=0, max_size=12
)


def apply_all(matrix, batch):
    for suspector, values in batch:
        matrix.merge_row(suspector, values)


class TestMarkAndGet:
    def test_initially_zero(self):
        matrix = SuspicionMatrix(3)
        assert matrix.get(1, 2) == 0

    def test_mark_sets_epoch(self):
        matrix = SuspicionMatrix(3)
        assert matrix.mark(1, 2, 4)
        assert matrix.get(1, 2) == 4

    def test_mark_is_max_write(self):
        matrix = SuspicionMatrix(3)
        matrix.mark(1, 2, 4)
        assert not matrix.mark(1, 2, 3)  # lower epoch ignored
        assert matrix.get(1, 2) == 4

    def test_rejects_self_suspicion(self):
        with pytest.raises(ConfigurationError):
            SuspicionMatrix(3).mark(1, 1, 1)

    def test_rejects_negative_epoch(self):
        with pytest.raises(ConfigurationError):
            SuspicionMatrix(3).mark(1, 2, -1)

    def test_row_format_is_one_based_dense(self):
        matrix = SuspicionMatrix(3)
        matrix.mark(2, 3, 5)
        assert matrix.row(2) == (0, 0, 0, 5)


class TestMergeRow:
    def test_merge_pointwise_max(self):
        matrix = SuspicionMatrix(3)
        matrix.mark(1, 2, 4)
        assert matrix.merge_row(1, (0, 0, 2, 7))  # 1-based dense
        assert matrix.get(1, 2) == 4  # kept (4 > 2)
        assert matrix.get(1, 3) == 7  # raised

    def test_merge_accepts_zero_based_rows(self):
        matrix = SuspicionMatrix(3)
        assert matrix.merge_row(1, (0, 2, 3))
        assert matrix.get(1, 2) == 2 and matrix.get(1, 3) == 3

    def test_merge_returns_false_when_no_change(self):
        matrix = SuspicionMatrix(3)
        matrix.mark(1, 2, 4)
        assert not matrix.merge_row(1, (0, 0, 4, 0))

    def test_merge_ignores_diagonal(self):
        matrix = SuspicionMatrix(3)
        assert not matrix.merge_row(1, (0, 9, 0, 0))  # entry for (1,1)
        assert matrix.get(1, 2) == 0

    def test_merge_ignores_byzantine_garbage(self):
        matrix = SuspicionMatrix(3)
        assert not matrix.merge_row(1, (0, 0, "evil", None))
        assert not matrix.merge_row(1, (0, 0, -5, 0))
        assert not matrix.merge_row(1, (1, 2))  # wrong arity
        assert not matrix.merge_row(1, (0, 0, True, 0))  # bools rejected
        assert matrix.get(1, 3) == 0

    def test_merge_only_touches_owner_row(self):
        matrix = SuspicionMatrix(3)
        matrix.merge_row(2, (0, 5, 0, 5))
        assert matrix.get(1, 3) == 0
        assert matrix.get(2, 1) == 5


class TestCrdtProperties:
    """The matrix is a join semilattice: merge order never matters."""

    @settings(max_examples=80, deadline=None)
    @given(updates)
    def test_idempotent(self, batch):
        once = SuspicionMatrix(N)
        twice = SuspicionMatrix(N)
        apply_all(once, batch)
        apply_all(twice, batch)
        apply_all(twice, batch)
        assert once == twice

    @settings(max_examples=80, deadline=None)
    @given(updates, st.randoms(use_true_random=False))
    def test_order_independent(self, batch, rnd):
        in_order = SuspicionMatrix(N)
        shuffled = SuspicionMatrix(N)
        apply_all(in_order, batch)
        permuted = list(batch)
        rnd.shuffle(permuted)
        apply_all(shuffled, permuted)
        assert in_order == shuffled

    @settings(max_examples=80, deadline=None)
    @given(updates, updates)
    def test_commutative_across_batches(self, batch_a, batch_b):
        ab = SuspicionMatrix(N)
        ba = SuspicionMatrix(N)
        apply_all(ab, batch_a)
        apply_all(ab, batch_b)
        apply_all(ba, batch_b)
        apply_all(ba, batch_a)
        assert ab == ba

    @settings(max_examples=60, deadline=None)
    @given(updates)
    def test_equivocation_converges_to_union(self, batch):
        # Two replicas receiving *different* subsets converge once each
        # receives the other's missing updates (gossip forwarding).
        left = SuspicionMatrix(N)
        right = SuspicionMatrix(N)
        apply_all(left, batch[::2])
        apply_all(right, batch[1::2])
        apply_all(left, batch[1::2])
        apply_all(right, batch[::2])
        assert left == right


class TestSuspectGraph:
    def test_edges_from_either_direction(self):
        matrix = SuspicionMatrix(4)
        matrix.mark(1, 2, 3)  # 1 suspects 2 in epoch 3
        graph = matrix.build_suspect_graph(3)
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 1)

    def test_epoch_filters_old_suspicions(self):
        matrix = SuspicionMatrix(4)
        matrix.mark(1, 2, 2)
        assert matrix.build_suspect_graph(2).has_edge(1, 2)
        assert not matrix.build_suspect_graph(3).has_edge(1, 2)

    def test_fig4_reconstruction(self):
        # Figure 4: edges labelled epoch 3 (triangle) and epoch 2 ((3,4)).
        matrix = SuspicionMatrix(5)
        matrix.mark(1, 2, 3)
        matrix.mark(2, 5, 3)
        matrix.mark(1, 5, 3)
        matrix.mark(3, 4, 2)
        epoch2 = matrix.build_suspect_graph(2)
        assert epoch2.edge_count() == 4
        epoch3 = matrix.build_suspect_graph(3)
        assert epoch3.edge_count() == 3
        assert not epoch3.has_edge(3, 4)  # dropped when epoch increased

    def test_rejects_epoch_zero(self):
        with pytest.raises(ConfigurationError):
            SuspicionMatrix(3).build_suspect_graph(0)

    def test_entries_iteration(self):
        matrix = SuspicionMatrix(3)
        matrix.mark(1, 2, 5)
        matrix.mark(3, 1, 2)
        assert set(matrix.entries()) == {(1, 2, 5), (3, 1, 2)}

    def test_copy_is_independent(self):
        matrix = SuspicionMatrix(3)
        clone = matrix.copy()
        matrix.mark(1, 2, 1)
        assert clone.get(1, 2) == 0
