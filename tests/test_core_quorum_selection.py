"""Tests for Algorithm 1 — the Quorum Selection module."""

import pytest

from repro.core.messages import KIND_UPDATE, UpdatePayload
from repro.core.quorum_selection import QuorumSelectionModule
from repro.core.spec import (
    agreement_holds,
    no_suspicion_holds,
    quorums_issued_after,
    termination_holds,
)
from repro.failures.adversary import Adversary
from repro.failures.strategies import FalseSuspicionInjector
from repro.util.errors import ConfigurationError
from tests.conftest import build_qs_world


class TestConfiguration:
    def test_rejects_f_zero(self, qs_world_5_2):
        sim, _ = qs_world_5_2
        with pytest.raises(ConfigurationError):
            QuorumSelectionModule(sim.host(1), n=5, f=0)

    def test_rejects_minority_correct(self, qs_world_5_2):
        sim, _ = qs_world_5_2
        with pytest.raises(ConfigurationError):
            QuorumSelectionModule(sim.host(1), n=4, f=2)  # q = f

    def test_initial_state_matches_algorithm_1(self, qs_world_5_2):
        _, modules = qs_world_5_2
        module = modules[1]
        assert module.epoch == 1
        assert module.suspecting == frozenset()
        assert module.qlast == frozenset({1, 2, 3})
        assert module.q == 3


class TestFaultFree:
    def test_no_quorum_changes(self, qs_world_5_2):
        sim, modules = qs_world_5_2
        sim.run_until(100.0)
        assert all(m.total_quorums_issued() == 0 for m in modules.values())
        assert all(m.qlast == frozenset({1, 2, 3}) for m in modules.values())
        assert all(m.epoch == 1 for m in modules.values())


class TestCrashScenarios:
    def test_crash_outside_default_quorum_is_invisible(self, qs_world_5_2):
        sim, modules = qs_world_5_2
        sim.at(10.0, lambda: sim.host(5).crash())
        sim.run_until(100.0)
        correct = [modules[p] for p in (1, 2, 3, 4)]
        # {1,2,3} is still the lex-first independent set: no change issued.
        assert all(m.qlast == frozenset({1, 2, 3}) for m in correct)
        assert agreement_holds(correct)
        assert no_suspicion_holds(correct)

    def test_crash_in_default_quorum_forces_change(self, qs_world_5_2):
        sim, modules = qs_world_5_2
        sim.at(10.0, lambda: sim.host(1).crash())
        sim.run_until(100.0)
        correct = [modules[p] for p in (2, 3, 4, 5)]
        assert all(m.qlast == frozenset({2, 3, 4}) for m in correct)
        assert agreement_holds(correct)
        assert no_suspicion_holds(correct)
        assert termination_holds(correct, after=60.0)

    def test_two_crashes(self, qs_world_5_2):
        sim, modules = qs_world_5_2
        sim.at(10.0, lambda: sim.host(1).crash())
        sim.at(15.0, lambda: sim.host(3).crash())
        sim.run_until(150.0)
        correct = [modules[p] for p in (2, 4, 5)]
        assert all(m.qlast == frozenset({2, 4, 5}) for m in correct)
        assert agreement_holds(correct)


class TestPerLinkOmission:
    def test_single_link_omission_excludes_pair(self):
        # p3 mutes heartbeats to p1 only: edge (1,3) appears; the lex-first
        # independent set must avoid having both 1 and 3.
        sim, modules = build_qs_world(5, 2)
        adversary = Adversary(sim)
        adversary.omit_links(3, dsts={1}, kinds={"heartbeat"}, start=10.0)
        sim.run_until(120.0)
        correct = [modules[p] for p in (1, 2, 4, 5)]
        assert agreement_holds(correct)
        final = correct[0].qlast
        assert not {1, 3} <= final
        assert no_suspicion_holds(correct)


class TestFalseSuspicions:
    def test_false_suspicion_changes_quorum_once(self, qs_world_5_2):
        sim, modules = qs_world_5_2
        sim.at(10.0, lambda: FalseSuspicionInjector(modules[1]).suspect(2))
        sim.run_until(100.0)
        correct = [modules[p] for p in (2, 3, 4, 5)]
        assert agreement_holds(correct)
        final = correct[0].qlast
        assert not {1, 2} <= final  # edge (1,2) respected
        # Exactly one change: {1,2,3} -> {1,3,4}.
        assert final == frozenset({1, 3, 4})

    def test_suspicions_of_outsiders_change_nothing(self, qs_world_5_2):
        sim, modules = qs_world_5_2
        # p5 (outside quorum) falsely suspects p4 (outside quorum).
        sim.at(10.0, lambda: FalseSuspicionInjector(modules[5]).suspect(4))
        sim.run_until(100.0)
        assert all(m.total_quorums_issued() == 0 for m in modules.values())


class TestUpdatePropagationAndByzantineRows:
    def test_forwarding_reaches_partitioned_receiver(self):
        # p1's UPDATEs to p4 are dropped, but p4 still learns p1's
        # suspicion via forwarding from other correct processes (Lemma 1).
        sim, modules = build_qs_world(5, 2)
        adversary = Adversary(sim)
        adversary.omit_links(1, dsts={4}, kinds={KIND_UPDATE})
        sim.at(10.0, lambda: FalseSuspicionInjector(modules[1]).suspect(2))
        sim.run_until(100.0)
        assert modules[4].matrix.get(1, 2) >= 1

    def test_equivocating_rows_converge_to_union(self, qs_world_5_2):
        # A Byzantine process sends different rows to different peers by
        # crafting two signed updates; max-merge makes everyone converge.
        sim, modules = qs_world_5_2
        byz = sim.host(5)

        def equivocate():
            row_a = (0, 3, 0, 0, 0, 0)  # p5 suspects p1 in epoch 3
            row_b = (0, 0, 3, 0, 0, 0)  # p5 suspects p2 in epoch 3
            signed_a = byz.authenticator.sign(UpdatePayload(row_a))
            signed_b = byz.authenticator.sign(UpdatePayload(row_b))
            byz.send(1, KIND_UPDATE, signed_a)
            byz.send(2, KIND_UPDATE, signed_b)

        sim.at(10.0, equivocate)
        sim.run_until(100.0)
        for pid in (1, 2, 3, 4):
            assert modules[pid].matrix.get(5, 1) == 3
            assert modules[pid].matrix.get(5, 2) == 3

    def test_cannot_write_another_process_row(self, qs_world_5_2):
        # An UPDATE is merged into the *signer's* row; p5 cannot claim to
        # deliver p1's row.
        sim, modules = qs_world_5_2
        byz = sim.host(5)
        row = (0, 0, 9, 0, 0, 0)
        signed = byz.authenticator.sign(UpdatePayload(row))
        sim.at(10.0, lambda: byz.send(2, KIND_UPDATE, signed))
        sim.run_until(50.0)
        assert modules[2].matrix.get(1, 2) == 0  # p1's row untouched
        assert modules[2].matrix.get(5, 2) == 9  # only p5's own row


class TestEpochAdvance:
    def test_correct_correct_suspicion_advances_epoch(self):
        # Force a false suspicion between correct processes by delaying
        # all heartbeats beyond the initial timeout before GST.
        sim, modules = build_qs_world(5, 2, seed=11, gst=40.0, base_timeout=3.0)
        sim.run_until(400.0)
        correct = [modules[p] for p in sim.pids]
        # Pre-GST false suspicions between correct processes occurred...
        assert sim.log.count("fd.suspect") > 0
        # ...so at least one epoch advance happened somewhere...
        assert max(m.epoch for m in correct) >= 2
        # ...and yet the system stabilized on a common quorum.
        assert agreement_holds(correct)
        assert no_suspicion_holds(correct)

    def test_final_quorum_is_lex_first_of_final_graph(self):
        from repro.graphs.independent_set import lex_first_independent_set

        sim, modules = build_qs_world(5, 2, seed=11, gst=40.0, base_timeout=3.0)
        sim.run_until(400.0)
        # Suspicions stamped with the final epoch keep constraining the
        # quorum even after the FD cancelled them ("suspicions previously
        # raised and canceled" are taken into account): the agreed quorum
        # is the lex-first independent set of the final-epoch graph.
        for pid in sim.pids:
            module = modules[pid]
            graph = module.matrix.build_suspect_graph(module.epoch)
            assert module.qlast == lex_first_independent_set(graph, module.q)


class TestInstrumentation:
    def test_quorums_issued_after(self, qs_world_5_2):
        sim, modules = qs_world_5_2
        sim.at(10.0, lambda: sim.host(1).crash())
        sim.run_until(100.0)
        correct = [modules[p] for p in (2, 3, 4, 5)]
        counts = quorums_issued_after(correct, after=0.0)
        assert all(count >= 1 for count in counts.values())
        assert quorums_issued_after(correct, after=100.0) == {
            p: 0 for p in (2, 3, 4, 5)
        }

    def test_listener_receives_events(self, qs_world_5_2):
        sim, modules = qs_world_5_2
        events = []
        modules[2].add_quorum_listener(events.append)
        sim.at(10.0, lambda: sim.host(1).crash())
        sim.run_until(100.0)
        assert events
        assert events[-1].quorum == frozenset({2, 3, 4})
        assert events[-1].process == 2
