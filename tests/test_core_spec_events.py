"""Direct tests for QS spec checkers and QuorumEvent."""

import pytest

from repro.core.events import QuorumEvent
from repro.core.spec import (
    agreement_holds,
    final_quorum,
    no_leader_suspicion_holds,
    no_link_suspicion_holds,
    no_suspicion_holds,
    quorum_change_times,
    termination_holds,
)
from repro.util.eventlog import EventLog


class FakeFd:
    def __init__(self, suspected):
        self.suspected = frozenset(suspected)


class FakeHost:
    def __init__(self, suspected=()):
        self.fd = FakeFd(suspected)


class FakeModule:
    """Just enough surface for the spec checkers."""

    def __init__(self, pid, qlast, suspected=(), leader=None, chain=None,
                 events=()):
        self.pid = pid
        self.qlast = frozenset(qlast)
        self.host = FakeHost(suspected)
        if leader is not None:
            self.leader = leader
        if chain is not None:
            self.chain = tuple(chain)
        self.quorum_events = [
            QuorumEvent(time=t, process=pid, epoch=1, quorum=self.qlast)
            for t in events
        ]


class TestQuorumEvent:
    def test_describe_plain(self):
        event = QuorumEvent(time=1.5, process=2, epoch=3, quorum=frozenset({1, 2}))
        text = event.describe()
        assert "p2" in text and "epoch=3" in text and "{p1, p2}" in text

    def test_describe_with_leader(self):
        event = QuorumEvent(time=1.5, process=2, epoch=3,
                            quorum=frozenset({1, 2}), leader=1)
        assert "p1!" in event.describe()


class TestTermination:
    def test_holds_when_quiet(self):
        modules = [FakeModule(1, {1, 2}, events=[5.0])]
        assert termination_holds(modules, after=10.0)

    def test_fails_on_late_event(self):
        modules = [FakeModule(1, {1, 2}, events=[5.0, 50.0])]
        assert not termination_holds(modules, after=10.0)


class TestAgreementAndFinal:
    def test_agreement(self):
        a, b = FakeModule(1, {1, 2}), FakeModule(2, {1, 2})
        assert agreement_holds([a, b])
        assert final_quorum([a, b]) == frozenset({1, 2})

    def test_disagreement(self):
        a, b = FakeModule(1, {1, 2}), FakeModule(2, {1, 3})
        assert not agreement_holds([a, b])
        assert final_quorum([a, b]) is None

    def test_leader_disagreement_breaks_agreement(self):
        a = FakeModule(1, {1, 2}, leader=1)
        b = FakeModule(2, {1, 2}, leader=2)
        assert not agreement_holds([a, b])


class TestNoSuspicionVariants:
    def test_no_suspicion_ok_outside_quorum(self):
        # A member outside the quorum may suspect whomever it likes.
        module = FakeModule(9, {1, 2}, suspected={1})
        assert no_suspicion_holds([module])

    def test_no_suspicion_violated_inside(self):
        module = FakeModule(1, {1, 2}, suspected={2})
        assert not no_suspicion_holds([module])

    def test_no_leader_suspicion_follower_side(self):
        follower = FakeModule(2, {1, 2, 3}, suspected={3}, leader=1)
        assert no_leader_suspicion_holds([follower])  # suspects a co-follower: fine
        bad = FakeModule(2, {1, 2, 3}, suspected={1}, leader=1)
        assert not no_leader_suspicion_holds([bad])

    def test_no_leader_suspicion_leader_side(self):
        leader = FakeModule(1, {1, 2, 3}, suspected={2}, leader=1)
        assert not no_leader_suspicion_holds([leader])

    def test_no_leader_suspicion_requires_leader_attr(self):
        assert not no_leader_suspicion_holds([FakeModule(1, {1, 2})])

    def test_no_link_suspicion(self):
        # chain (1, 2, 3): p2's neighbours are 1 and 3.
        ok = FakeModule(2, {1, 2, 3}, suspected=set(), chain=(1, 2, 3))
        assert no_link_suspicion_holds([ok])
        non_adjacent = FakeModule(1, {1, 2, 3}, suspected={3}, chain=(1, 2, 3))
        assert no_link_suspicion_holds([non_adjacent])  # 3 not adjacent to 1
        adjacent = FakeModule(2, {1, 2, 3}, suspected={3}, chain=(1, 2, 3))
        assert not no_link_suspicion_holds([adjacent])

    def test_no_link_suspicion_requires_chain_attr(self):
        assert not no_link_suspicion_holds([FakeModule(1, {1, 2})])


class TestQuorumChangeTimes:
    def test_filters_to_correct_processes(self):
        log = EventLog()
        log.append(1.0, 1, "qs.quorum")
        log.append(2.0, 2, "qs.quorum")
        log.append(3.0, 1, "other")
        assert quorum_change_times(log, [1]) == [1.0]
        assert quorum_change_times(log, [1, 2]) == [1.0, 2.0]
