"""Crash-recovery behaviour: the paper's eventual-detection world.

Section II grounds *eventual detection* in the crash-recovery model
(reference [9]): processes fail and resume, suspicions get raised and
cancelled.  These tests exercise the reproduction's recovery path and
the key memory property: Quorum Selection remembers cancelled suspicions
within an epoch, so a recovered process does not bounce straight back
into the quorum.
"""

from repro.core.spec import agreement_holds, no_suspicion_holds
from repro.fd.properties import suspicion_intervals
from tests.conftest import build_qs_world


class TestHostRecovery:
    def test_recover_restores_running(self):
        sim, _ = build_qs_world(5, 2)
        sim.at(10.0, lambda: sim.host(4).crash())
        sim.at(20.0, lambda: sim.host(4).recover())
        sim.run_until(60.0)
        assert sim.host(4).running
        assert sim.log.count("recover", process=4) == 1

    def test_recover_is_idempotent_on_running_host(self):
        sim, _ = build_qs_world(5, 2)
        sim.start()
        sim.host(4).recover()  # never crashed: no-op
        assert sim.log.count("recover", process=4) == 0

    def test_heartbeats_resume_after_recovery(self):
        sim, _ = build_qs_world(5, 2)
        sim.at(10.0, lambda: sim.host(4).crash())
        sim.at(30.0, lambda: sim.host(4).recover())
        sim.run_until(100.0)
        beats_late = [
            e for e in sim.log.events(kind="fd.expect", process=1)
        ]
        # p4's beats flow again: p1 no longer suspects it at the end.
        assert 4 not in sim.host(1).fd.suspected


class TestSuspicionLifecycle:
    def test_suspicions_raised_then_cancelled(self):
        sim, _ = build_qs_world(5, 2)
        sim.at(10.0, lambda: sim.host(4).crash())
        sim.at(40.0, lambda: sim.host(4).recover())
        sim.run_until(150.0)
        intervals = suspicion_intervals(sim.log, 1, 4)
        assert intervals, "the crash must have been suspected"
        # The last suspicion interval closed after recovery.
        assert intervals[-1][1] != float("inf")

    def test_detected_survives_recovery(self):
        sim, modules = build_qs_world(5, 2)
        sim.at(5.0, lambda: sim.host(1).fd.detected(4))
        sim.at(10.0, lambda: sim.host(4).crash())
        sim.at(20.0, lambda: sim.host(4).recover())
        sim.run_until(100.0)
        assert 4 in sim.host(1).fd.suspected  # permanent detection


class TestQuorumMemory:
    def test_recovered_process_stays_out_within_epoch(self):
        # p1 (default quorum member) crashes, the quorum moves on; after
        # recovery the FD suspicions are cancelled, but the epoch-stamped
        # matrix marks keep p1 out — "suspicions previously raised and
        # canceled" are exactly what Quorum Selection must remember.
        sim, modules = build_qs_world(5, 2)
        sim.at(10.0, lambda: sim.host(1).crash())
        sim.at(60.0, lambda: sim.host(1).recover())
        sim.run_until(250.0)
        correct = [modules[p] for p in sim.pids]
        assert agreement_holds(correct)
        assert no_suspicion_holds(correct)
        final = correct[1].qlast
        assert 1 not in final  # memory: still excluded this epoch
        # ...even though no live suspicion remains anywhere:
        for pid in (2, 3, 4, 5):
            assert 1 not in sim.host(pid).fd.suspected
        # ...because the matrix still shows the epoch-1 marks:
        assert any(
            modules[2].matrix.get(p, 1) >= modules[2].epoch for p in (2, 3, 4, 5)
        )

    def test_recovered_process_participates_in_gossip_again(self):
        sim, modules = build_qs_world(5, 2)
        sim.at(10.0, lambda: sim.host(1).crash())
        sim.at(60.0, lambda: sim.host(1).recover())
        sim.run_until(250.0)
        # The recovered process converged to the same matrix and quorum.
        assert modules[1].qlast == modules[2].qlast
        assert modules[1].matrix == modules[2].matrix

    def test_repeated_crash_recovery_cycles(self):
        sim, modules = build_qs_world(5, 2)
        for k in range(3):
            sim.at(10.0 + 40.0 * k, lambda: sim.host(4).crash())
            sim.at(30.0 + 40.0 * k, lambda: sim.host(4).recover())
        sim.run_until(300.0)
        correct = [modules[p] for p in sim.pids]
        assert agreement_holds(correct)
        # Eventual detection: suspicions were raised and cancelled
        # repeatedly (at least once per cycle at some observer).
        intervals = suspicion_intervals(sim.log, 1, 4)
        assert len(intervals) >= 2
