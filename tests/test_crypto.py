"""Tests for the simulated cryptography substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.authenticator import Authenticator, SignedMessage
from repro.crypto.digests import canonical_encode, digest
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import Signature, sign_payload, verify_payload
from repro.util.errors import AuthenticationError, ConfigurationError

# A strategy over the payload vocabulary canonical_encode supports.
payloads = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-10**6, 10**6)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4).map(tuple)
    | st.dictionaries(st.text(max_size=5), children, max_size=4),
    max_leaves=12,
)


class TestCanonicalEncode:
    def test_dict_order_independent(self):
        assert canonical_encode({"a": 1, "b": 2}) == canonical_encode({"b": 2, "a": 1})

    def test_set_order_independent(self):
        assert canonical_encode({3, 1, 2}) == canonical_encode({2, 3, 1})

    def test_type_tags_distinguish(self):
        assert canonical_encode(1) != canonical_encode("1")
        assert canonical_encode(True) != canonical_encode(1)
        assert canonical_encode(b"x") != canonical_encode("x")
        assert canonical_encode(()) != canonical_encode(None)

    def test_nesting_is_not_flattened(self):
        assert canonical_encode((1, (2, 3))) != canonical_encode((1, 2, 3))

    def test_length_prefix_prevents_concat_collision(self):
        assert canonical_encode(("ab", "c")) != canonical_encode(("a", "bc"))

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            canonical_encode(object())

    def test_object_with_canonical_method(self):
        class Thing:
            def canonical(self):
                return ("thing", 7)

        assert canonical_encode(Thing()) == canonical_encode(Thing())

    @given(payloads, payloads)
    def test_equal_payloads_equal_encodings(self, a, b):
        # Python's == conflates bool/int (False == 0) and float/int
        # (1.0 == 1); the encoder deliberately does NOT (type tags keep
        # it injective), so the property holds for *structurally* equal
        # payloads: equal values of equal types, recursively.
        def same_types(x, y):
            if type(x) is not type(y):
                return False
            if isinstance(x, (tuple, list)):
                return len(x) == len(y) and all(
                    same_types(i, j) for i, j in zip(x, y)
                )
            if isinstance(x, dict):
                return set(x) == set(y) and all(
                    same_types(x[k], y[k]) for k in x
                )
            return True

        if a == b and same_types(a, b):
            assert canonical_encode(a) == canonical_encode(b)

    @given(payloads)
    def test_digest_is_stable_hex(self, payload):
        first = digest(payload)
        assert first == digest(payload)
        assert len(first) == 32
        int(first, 16)  # valid hex


class TestKeyRegistry:
    def test_contains(self):
        registry = KeyRegistry(3)
        assert 1 in registry and 3 in registry
        assert 4 not in registry and 0 not in registry
        assert "x" not in registry

    def test_distinct_keys(self):
        registry = KeyRegistry(5)
        keys = {registry.secret_for(pid) for pid in range(1, 6)}
        assert len(keys) == 5

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            KeyRegistry(0)

    def test_rejects_unknown_pid(self):
        with pytest.raises(ConfigurationError):
            KeyRegistry(3).secret_for(4)

    def test_nonce_isolates_systems(self):
        a = KeyRegistry(2, system_nonce="sys-a")
        b = KeyRegistry(2, system_nonce="sys-b")
        assert a.secret_for(1) != b.secret_for(1)


class TestSignatures:
    def setup_method(self):
        self.registry = KeyRegistry(3)

    def test_roundtrip(self):
        sig = sign_payload(self.registry, 1, ("hello", 2))
        assert verify_payload(self.registry, sig, ("hello", 2))

    def test_wrong_payload_fails(self):
        sig = sign_payload(self.registry, 1, ("hello", 2))
        assert not verify_payload(self.registry, sig, ("hello", 3))

    def test_claimed_signer_is_checked(self):
        sig = sign_payload(self.registry, 1, "msg")
        forged = Signature(signer=2, tag=sig.tag)
        assert not verify_payload(self.registry, forged, "msg")

    def test_unknown_signer_fails_quietly(self):
        sig = Signature(signer=99, tag=b"x" * 32)
        assert not verify_payload(self.registry, sig, "msg")

    @given(payloads)
    def test_signature_binds_payload(self, payload):
        sig = sign_payload(self.registry, 2, payload)
        assert verify_payload(self.registry, sig, payload)
        assert not verify_payload(self.registry, sig, (payload, "suffix"))


class TestAuthenticator:
    def setup_method(self):
        self.registry = KeyRegistry(3)
        self.alice = Authenticator(self.registry, 1)
        self.bob = Authenticator(self.registry, 2)

    def test_cross_verification(self):
        message = self.alice.sign(("prepare", 4))
        assert self.bob.verify(message)
        assert message.signer == 1

    def test_tampered_payload_rejected(self):
        message = self.alice.sign(("prepare", 4))
        tampered = SignedMessage(("prepare", 5), message.signature)
        assert not self.bob.verify(tampered)

    def test_cannot_impersonate(self):
        # Bob signs, then relabels the signature as Alice's: must fail.
        message = self.bob.sign("hi")
        forged = SignedMessage(
            "hi", Signature(signer=1, tag=message.signature.tag)
        )
        assert not self.alice.verify(forged)

    def test_require_valid_raises(self):
        message = self.alice.sign("x")
        bad = SignedMessage("y", message.signature)
        with pytest.raises(AuthenticationError):
            self.bob.require_valid(bad)

    def test_require_valid_passes_through(self):
        message = self.alice.sign("x")
        assert self.bob.require_valid(message) is message

    def test_signed_message_canonical_is_encodable(self):
        message = self.alice.sign(("nested",))
        rewrapped = self.bob.sign(message)  # COMMIT-embeds-PREPARE pattern
        assert self.alice.verify(rewrapped)
        assert rewrapped.payload is message

    def test_rejects_pid_outside_registry(self):
        with pytest.raises(ConfigurationError):
            Authenticator(self.registry, 9)
