"""Byzantine epoch inflation: stamping absurd epochs must not DoS.

A faulty process can put any value in its own signed row — including an
epoch stamp of a billion.  Under a naive one-by-one epoch walk (the
pseudocode as printed), the first inconsistent epoch would make correct
processes increment through every intermediate value.  The implemented
epoch *jump* (DESIGN.md §5.10) advances directly to the next viable
threshold; these tests pin that behaviour.
"""

from repro.core.messages import KIND_UPDATE, UpdatePayload
from repro.core.spec import agreement_holds
from repro.failures.strategies import FalseSuspicionInjector
from tests.conftest import build_qs_world

HUGE = 10**9


def inject_inflated_row(sim, byz_pid, n, value=HUGE):
    """The Byzantine process claims to suspect everyone at a huge epoch."""
    host = sim.host(byz_pid)
    row = [0] * (n + 1)
    for other in range(1, n + 1):
        if other != byz_pid:
            row[other] = value
    signed = host.authenticator.sign(UpdatePayload(tuple(row)))
    for dst in range(1, n + 1):
        if dst != byz_pid:
            host.send(dst, KIND_UPDATE, signed)


def inject_edge_row(sim, signer_pid, edges, value):
    """Sign and deliver a row claiming ``signer suspects k`` at ``value``."""
    host = sim.host(signer_pid)
    n = sim.config.n
    row = [0] * (n + 1)
    for k in edges:
        row[k] = value
    signed = host.authenticator.sign(UpdatePayload(tuple(row)))
    for dst in range(1, n + 1):
        host.send(dst, KIND_UPDATE, signed)  # signer included: everyone advances


class TestForwardMemoryBounded:
    """Gossip-forward dedup entries must not accumulate across epochs.

    Every wave injects suspicion rows whose edges cover all size-q subsets
    (no independent set), forcing one epoch advance per wave; each wave's
    signed UPDATEs are distinct messages that enter every module's
    ``_forwarded`` map.  Before the per-epoch prune, the map grew by a
    handful of entries per epoch forever (until the overflow reset); now
    entries last seen in a retired epoch are collected on advance.
    """

    def test_forward_map_stays_small_across_many_epochs(self):
        sim, modules = build_qs_world(5, 2)
        waves = 30
        for wave in range(1, waves + 1):
            t = 10.0 * wave
            # Cover of all 3-subsets of {1..5}: edges (1,2),(3,4),(3,5),(4,5).
            sim.at(t, lambda w=wave: inject_edge_row(sim, 1, (2,), w))
            sim.at(t, lambda w=wave: inject_edge_row(sim, 3, (4, 5), w))
            sim.at(t, lambda w=wave: inject_edge_row(sim, 4, (5,), w))
        sim.run_until(10.0 * waves + 60.0)
        for pid, module in modules.items():
            # The run really did churn epochs and prune retired entries.
            assert module.epoch > waves // 2, f"p{pid} advanced only to {module.epoch}"
            assert module.forward_entries_pruned > 0, f"p{pid} never pruned"
            # Live entries are those of the current epoch only — a small
            # constant per wave, not proportional to the epochs traversed.
            lifetime = module.forward_entries_pruned + len(module._forwarded)
            assert len(module._forwarded) <= 16, (
                f"p{pid} holds {len(module._forwarded)} forward entries "
                f"(of {lifetime} lifetime) — prune is not working"
            )


class TestInflationAlone:
    def test_inflated_row_is_ignored_until_epochs_catch_up(self):
        # The far-future star forms no edges (band defense): the quorum
        # is untouched and no epoch advance happens.
        sim, modules = build_qs_world(4, 1)
        sim.at(10.0, lambda: inject_inflated_row(sim, 4, 4))
        sim.run_until(100.0)
        correct = [modules[p] for p in (1, 2, 3)]
        assert all(m.epoch == 1 for m in correct)
        assert all(m.qlast == frozenset({1, 2, 3}) for m in correct)
        assert agreement_holds(correct)

    def test_matrix_records_the_huge_value(self):
        sim, modules = build_qs_world(4, 1)
        sim.at(10.0, lambda: inject_inflated_row(sim, 4, 4))
        sim.run_until(100.0)
        assert modules[1].matrix.get(4, 2) == HUGE


class TestInflationPlusCorrectSuspicion:
    """The killer combination against the paper-literal semantics: an
    inflated star pins edges through every epoch up to the inflated
    value, so *any* concurrent correct-correct suspicion (which gets
    re-stamped into each new epoch) leaves no independent set for ~10^9
    consecutive epochs — a livelock.  The epoch band defuses it: the
    future-dated star simply never forms edges."""

    def test_band_prevents_epoch_climb_entirely(self):
        sim, modules = build_qs_world(4, 1)
        sim.at(10.0, lambda: inject_inflated_row(sim, 4, 4))
        sim.at(20.0, lambda: FalseSuspicionInjector(modules[1]).suspect(2))
        sim.run_until(150.0)
        correct = [modules[p] for p in (1, 2, 3)]
        # The star is out of band: the only edge is (1,2), an independent
        # set exists, no epoch ever advances, and the run stays tiny.
        assert all(m.epoch == 1 for m in correct)
        assert agreement_holds(correct)
        assert sim.scheduler.steps_executed < 20_000

    def test_quorum_respects_the_real_suspicion(self):
        sim, modules = build_qs_world(4, 1)
        sim.at(10.0, lambda: inject_inflated_row(sim, 4, 4))
        sim.at(20.0, lambda: FalseSuspicionInjector(modules[1]).suspect(2))
        sim.run_until(150.0)
        module = modules[3]
        # The genuine (in-band) suspicion (1,2) is honoured; the inflated
        # star is not.
        assert module.qlast == frozenset({1, 3, 4})

    def test_paper_literal_semantics_would_livelock(self):
        # Abstract demonstration (no network): with unbounded semantics
        # (slack=None), the star + a re-stamped correct edge kills every
        # independent set at every epoch up to the inflated value.
        from repro.core.suspicion_matrix import SuspicionMatrix
        from repro.graphs.independent_set import has_independent_set

        matrix = SuspicionMatrix(4)
        for other in (1, 2, 3):
            matrix.mark(4, other, HUGE)
        for probe_epoch in (1, 2, 100, 10**6):
            matrix.mark(1, 2, probe_epoch)  # re-stamped at each epoch
            unbounded = matrix.build_suspect_graph(probe_epoch, slack=None)
            banded = matrix.build_suspect_graph(probe_epoch, slack=1024)
            assert not has_independent_set(unbounded, 3)  # livelocked
            assert has_independent_set(banded, 3)         # defused

    def test_in_band_values_still_fully_honoured(self):
        # The band only discounts far-future stamps: values within
        # epoch + slack behave exactly like the paper's semantics.
        from repro.core.suspicion_matrix import SuspicionMatrix

        matrix = SuspicionMatrix(4)
        matrix.mark(4, 1, 5)
        graph = matrix.build_suspect_graph(1, slack=1024)
        assert graph.has_edge(4, 1)
        assert not matrix.build_suspect_graph(6, slack=1024).has_edge(4, 1)
