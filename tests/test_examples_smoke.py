"""Examples smoke tier: every ``examples/*.py`` must run clean.

Marked ``examples`` so CI can run the tier on its own (``-m examples``).
Each script executes in-process under ``runpy`` with ``__main__``
semantics — importable, runnable, and exiting zero is the contract the
README makes for every example.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

pytestmark = pytest.mark.examples

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert EXAMPLES, f"no example scripts found under {EXAMPLES_DIR}"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script, capsys, monkeypatch):
    # Scripts that read sys.argv must see their own name, not pytest's.
    monkeypatch.setattr("sys.argv", [str(script)])
    try:
        runpy.run_path(str(script), run_name="__main__")
    except SystemExit as exc:  # explicit sys.exit(0) is fine
        assert exc.code in (None, 0), f"{script.name} exited {exc.code}"
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"
