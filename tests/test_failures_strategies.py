"""Tests for adversary strategies (Theorem 4 adversary, random noise)."""

import pytest

from repro.core.spec import agreement_holds, no_suspicion_holds
from repro.failures.adversary import Adversary, LinkRule
from repro.failures.strategies import (
    FalseSuspicionInjector,
    LowerBoundStrategy,
    RandomSuspicionStrategy,
)
from repro.util.errors import ConfigurationError
from tests.conftest import build_qs_world


class TestAdversaryControl:
    def test_corrupt_respects_budget(self):
        sim, _ = build_qs_world(5, 2)
        adversary = Adversary(sim, f_max=1)
        adversary.corrupt(1)
        adversary.corrupt(1)  # idempotent, still one
        with pytest.raises(ConfigurationError):
            adversary.corrupt(2)

    def test_correct_processes_listing(self):
        sim, _ = build_qs_world(5, 2)
        adversary = Adversary(sim)
        adversary.corrupt(2)
        assert adversary.correct_processes() == [1, 3, 4, 5]

    def test_rule_matching_window(self):
        rule = LinkRule(dsts={2}, kinds={"m"}, start=5.0, end=10.0, drop=True)
        from repro.sim.network import Envelope

        inside = Envelope(kind="m", payload=None, src=1, dst=2, sent_at=7.0)
        before = Envelope(kind="m", payload=None, src=1, dst=2, sent_at=4.0)
        wrong_dst = Envelope(kind="m", payload=None, src=1, dst=3, sent_at=7.0)
        wrong_kind = Envelope(kind="x", payload=None, src=1, dst=2, sent_at=7.0)
        assert rule.matches(inside)
        assert not rule.matches(before)
        assert not rule.matches(wrong_dst)
        assert not rule.matches(wrong_kind)

    def test_delay_growth_action(self):
        from repro.sim.network import Envelope

        rule = LinkRule(start=10.0, delay_growth=2.0)
        envelope = Envelope(kind="m", payload=None, src=1, dst=2, sent_at=15.0)
        assert rule.action_for(envelope).extra_delay == 10.0


class TestFalseSuspicionInjector:
    def test_injects_and_propagates(self):
        sim, modules = build_qs_world(5, 2)
        sim.at(10.0, lambda: FalseSuspicionInjector(modules[1]).suspect(3))
        sim.run_until(60.0)
        for pid in (2, 4, 5):
            assert modules[pid].matrix.get(1, 3) >= 1

    def test_rejects_self_suspicion(self):
        _, modules = build_qs_world(5, 2)
        with pytest.raises(ConfigurationError):
            FalseSuspicionInjector(modules[1]).suspect(1)

    def test_keeps_previous_suspicions(self):
        sim, modules = build_qs_world(5, 2)
        injector = FalseSuspicionInjector(modules[1])
        sim.at(10.0, lambda: injector.suspect(3))
        sim.at(20.0, lambda: injector.suspect(4))
        sim.run_until(60.0)
        assert modules[2].matrix.get(1, 3) >= 1
        assert modules[2].matrix.get(1, 4) >= 1


class TestLowerBoundStrategy:
    def test_validation(self):
        sim, modules = build_qs_world(5, 2)
        with pytest.raises(ConfigurationError):
            LowerBoundStrategy(sim, modules, faulty={1, 2}, targets=(2, 3))
        with pytest.raises(ConfigurationError):
            LowerBoundStrategy(sim, modules, faulty={1}, targets=(2,))

    def test_runs_to_exhaustion(self):
        sim, modules = build_qs_world(6, 2, seed=5)
        strategy = LowerBoundStrategy(sim, modules, faulty={1, 2}, targets=(3, 4))
        strategy.install()
        sim.run_until(800.0)
        assert strategy.done
        # C(f+2,2) - 1 = 5 usable pairs with a faulty endpoint.
        assert len(strategy.fired) == 5
        correct = [modules[p] for p in (3, 4, 5, 6)]
        assert agreement_holds(correct)
        assert no_suspicion_holds(correct)

    def test_pairs_never_reused(self):
        sim, modules = build_qs_world(6, 2, seed=5)
        strategy = LowerBoundStrategy(sim, modules, faulty={1, 2}, targets=(3, 4))
        strategy.install()
        sim.run_until(800.0)
        normalized = {(min(a, b), max(a, b)) for _, a, b in strategy.fired}
        assert len(normalized) == len(strategy.fired)

    def test_suspector_is_always_faulty(self):
        sim, modules = build_qs_world(6, 2, seed=5)
        strategy = LowerBoundStrategy(sim, modules, faulty={1, 2}, targets=(3, 4))
        strategy.install()
        sim.run_until(800.0)
        assert all(suspector in {1, 2} for _, suspector, _ in strategy.fired)


class TestRandomStrategy:
    def test_stabilizes_after_noise_stops(self):
        sim, modules = build_qs_world(5, 2, seed=9)
        strategy = RandomSuspicionStrategy(
            sim, modules, faulty={1, 2}, rate=0.6, stop_at=120.0
        )
        strategy.install()
        sim.run_until(400.0)
        correct = [modules[p] for p in (3, 4, 5)]
        assert agreement_holds(correct)
        assert no_suspicion_holds(correct)
        # Nothing fires after the stop time.
        assert all(t < 120.0 for t, _, _ in strategy.fired)

    def test_deterministic_for_seed(self):
        def run(seed):
            sim, modules = build_qs_world(5, 2, seed=seed)
            strategy = RandomSuspicionStrategy(
                sim, modules, faulty={1}, rate=0.5, stop_at=60.0
            )
            strategy.install()
            sim.run_until(100.0)
            return strategy.fired

        assert run(4) == run(4)


class TestStackedRules:
    """Satellite E28-2: the audited multi-strategy stacking contract.

    Multiple strategies attaching rules to one faulty process must
    compose predictably: first matching rule whose probability draw
    passes wins, effects never combine, a failed draw falls through,
    and tag-scoped clearing removes exactly one owner's rules.
    """

    def make(self, n=5, f=2):
        from repro.sim.network import Envelope

        sim, _ = build_qs_world(n, f)
        adversary = Adversary(sim)
        adversary.corrupt(1)
        intercept = sim.network._interceptors[1]
        env = lambda dst, kind="m": Envelope(
            kind=kind, payload=None, src=1, dst=dst, sent_at=sim.now
        )
        return adversary, intercept, env

    def test_first_match_wins_effects_never_combine(self):
        adversary, intercept, env = self.make()
        adversary.add_rule(1, LinkRule(dsts={2}, drop=True))
        adversary.add_rule(1, LinkRule(extra_delay=5.0))
        # dst 2: the earlier drop rule shadows the delay-all rule.
        action = intercept(env(2))
        assert action.verdict == "drop" and action.extra_delay == 0.0
        # Other dsts: only the delay-all rule matches.
        action = intercept(env(3))
        assert action.verdict == "deliver" and action.extra_delay == 5.0

    def test_attach_order_decides_shadowing(self):
        adversary, intercept, env = self.make()
        adversary.add_rule(1, LinkRule(extra_delay=5.0))
        adversary.add_rule(1, LinkRule(dsts={2}, drop=True))
        # Reversed attach order: the delay-all rule now matches first
        # everywhere, so the narrower drop rule is dead for dst 2 too.
        action = intercept(env(2))
        assert action.verdict == "deliver" and action.extra_delay == 5.0

    def test_zero_probability_rule_falls_through(self):
        adversary, intercept, env = self.make()
        adversary.add_rule(1, LinkRule(dsts={2}, drop=True, probability=0.0))
        adversary.add_rule(1, LinkRule(dsts={2}, extra_delay=3.0))
        # The coin for rule 1 always fails, so rule 2 decides.
        for _ in range(10):
            action = intercept(env(2))
            assert action.verdict == "deliver" and action.extra_delay == 3.0

    def test_tag_scoped_clear_preserves_other_owners(self):
        adversary, intercept, env = self.make()
        adversary.add_rule(1, LinkRule(dsts={2}, drop=True, tag="omit#0"))
        adversary.add_rule(1, LinkRule(extra_delay=4.0, tag="timing#1"))
        adversary.add_rule(1, LinkRule(dsts={3}, drop=True, tag="omit#0"))
        assert adversary.clear_rules(1, tag="omit#0") == 2
        left = adversary.rules(1)
        assert [rule.tag for rule in left] == ["timing#1"]
        # The live interceptor sees the post-clear list immediately.
        assert intercept(env(2)).verdict == "deliver"
        assert intercept(env(2)).extra_delay == 4.0

    def test_clear_without_tag_removes_everything_but_keeps_corruption(self):
        adversary, intercept, env = self.make()
        adversary.add_rule(1, LinkRule(drop=True, tag="a"))
        adversary.add_rule(1, LinkRule(drop=True, tag="b"))
        assert adversary.clear_rules(1) == 2
        assert adversary.rules(1) == ()
        assert 1 in adversary.faulty
        action = intercept(env(2))
        assert action.verdict == "deliver" and action.extra_delay == 0.0

    def test_clear_rules_on_unknown_pid_is_noop(self):
        adversary, _, _ = self.make()
        assert adversary.clear_rules(4) == 0
