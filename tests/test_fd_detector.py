"""Tests for the expectation-driven failure detector (Section IV-B)."""

import pytest

from repro.crypto.authenticator import SignedMessage
from repro.fd.detector import FailureDetector
from repro.fd.expectations import kind_and, kind_is
from repro.fd.timers import TimeoutPolicy
from repro.sim.latency import FixedLatency
from repro.sim.runtime import Simulation, SimulationConfig
from repro.util.errors import ConfigurationError


def make_world(n=3, timeout=5.0, latency=1.0):
    sim = Simulation(SimulationConfig(n=n, seed=1, latency=FixedLatency(latency)))
    detectors = {
        pid: FailureDetector(sim.host(pid), TimeoutPolicy(base_timeout=timeout))
        for pid in sim.pids
    }
    sim.start()
    return sim, detectors


class TestDelivery:
    def test_signed_message_delivered_with_signer_source(self):
        sim, fds = make_world()
        got = []
        sim.host(2).subscribe("m", lambda k, p, s: got.append((p.payload, s)))
        signed = sim.host(1).authenticator.sign("hello")
        # Transported via p3 (forwarding): source must still be p1.
        sim.host(3).send(2, "m", signed)
        sim.run_until(5.0)
        assert got == [("hello", 1)]

    def test_forged_message_dropped(self):
        sim, fds = make_world()
        got = []
        sim.host(2).subscribe("m", lambda k, p, s: got.append(p))
        good = sim.host(1).authenticator.sign("hello")
        forged = SignedMessage("tampered", good.signature)
        sim.host(1).send(2, "m", forged)
        sim.run_until(5.0)
        assert got == []
        assert sim.log.count("fd.authfail", process=2) == 1

    def test_unsigned_allowed_by_default(self):
        sim, fds = make_world()
        got = []
        sim.host(2).subscribe("m", lambda k, p, s: got.append((p, s)))
        sim.host(1).send(2, "m", "raw")
        sim.run_until(5.0)
        assert got == [("raw", 1)]

    def test_unsigned_rejected_when_required(self):
        sim = Simulation(SimulationConfig(n=2, seed=1, latency=FixedLatency(1.0)))
        FailureDetector(sim.host(2), require_signatures=True)
        got = []
        sim.host(2).subscribe("m", lambda k, p, s: got.append(p))
        sim.start()
        sim.host(1).send(2, "m", "raw")
        sim.run_until(5.0)
        assert got == []


class TestExpectations:
    def test_fulfilled_before_deadline_no_suspicion(self):
        sim, fds = make_world(timeout=5.0)
        fds[2].expect(1, kind_is("m"), label="t")
        sim.host(1).send(2, "m", sim.host(1).authenticator.sign("x"))
        sim.run_until(20.0)
        assert fds[2].suspected == frozenset()
        assert fds[2].expectations_fulfilled == 1

    def test_timeout_raises_suspicion(self):
        sim, fds = make_world(timeout=5.0)
        fds[2].expect(1, kind_is("m"))
        sim.run_until(20.0)
        assert fds[2].suspected == frozenset({1})
        assert sim.log.count("fd.timeout", process=2) == 1

    def test_late_arrival_cancels_suspicion(self):
        sim, fds = make_world(timeout=5.0)
        fds[2].expect(1, kind_is("m"))
        signed = sim.host(1).authenticator.sign("x")
        sim.at(10.0, lambda: sim.host(1).send(2, "m", signed))
        sim.run_until(8.0)
        assert fds[2].suspected == frozenset({1})  # eventual detection...
        sim.run_until(20.0)
        assert fds[2].suspected == frozenset()  # ...then cancelled
        assert sim.log.count("fd.unsuspect", process=2) == 1

    def test_late_arrival_grows_timeout(self):
        sim, fds = make_world(timeout=5.0)
        fds[2].expect(1, kind_is("m"))
        signed = sim.host(1).authenticator.sign("x")
        sim.at(10.0, lambda: sim.host(1).send(2, "m", signed))
        sim.run_until(20.0)
        assert fds[2].policy.timeout_for(1) == 10.0  # doubled
        assert fds[2].policy.false_suspicions[1] == 1

    def test_predicate_filters_matches(self):
        sim, fds = make_world(timeout=5.0)
        fds[2].expect(1, kind_and("m", lambda p: p.payload == "right"))
        wrong = sim.host(1).authenticator.sign("wrong")
        sim.host(1).send(2, "m", wrong)
        sim.run_until(20.0)
        assert fds[2].suspected == frozenset({1})  # wrong payload: no match

    def test_source_must_match(self):
        sim, fds = make_world(timeout=5.0)
        fds[2].expect(1, kind_is("m"))
        sim.host(3).send(2, "m", sim.host(3).authenticator.sign("x"))
        sim.run_until(20.0)
        assert fds[2].suspected == frozenset({1})

    def test_one_message_fulfills_all_matching(self):
        sim, fds = make_world(timeout=5.0)
        fds[2].expect(1, kind_is("m"))
        fds[2].expect(1, kind_is("m"))
        sim.host(1).send(2, "m", sim.host(1).authenticator.sign("x"))
        sim.run_until(20.0)
        assert fds[2].expectations_fulfilled == 2
        assert fds[2].suspected == frozenset()

    def test_explicit_timeout_overrides_policy(self):
        sim, fds = make_world(timeout=100.0)
        fds[2].expect(1, kind_is("m"), timeout=2.0)
        sim.run_until(5.0)
        assert fds[2].suspected == frozenset({1})


class TestCancel:
    def test_cancel_all(self):
        sim, fds = make_world(timeout=5.0)
        fds[2].expect(1, kind_is("m"))
        fds[2].expect(3, kind_is("m"))
        assert fds[2].cancel() == 2
        sim.run_until(20.0)
        assert fds[2].suspected == frozenset()

    def test_cancel_by_group(self):
        sim, fds = make_world(timeout=5.0)
        fds[2].expect(1, kind_is("m"), group="a")
        fds[2].expect(3, kind_is("m"), group="b")
        assert fds[2].cancel(group="a") == 1
        sim.run_until(20.0)
        assert fds[2].suspected == frozenset({3})

    def test_cancel_withdraws_open_suspicion(self):
        sim, fds = make_world(timeout=5.0)
        fds[2].expect(1, kind_is("m"), group="x")
        sim.run_until(10.0)
        assert fds[2].suspected == frozenset({1})
        fds[2].cancel(group="x")
        assert fds[2].suspected == frozenset()

    def test_individual_handle_cancel(self):
        sim, fds = make_world(timeout=5.0)
        handle = fds[2].expect(1, kind_is("m"))
        handle.cancel()
        sim.run_until(20.0)
        assert fds[2].suspected == frozenset()
        assert not handle.pending


class TestDetected:
    def test_detected_is_permanent(self):
        sim, fds = make_world()
        fds[2].detected(1)
        assert fds[2].suspected == frozenset({1})
        # Even a matching message later does not clear it.
        sim.host(1).send(2, "m", sim.host(1).authenticator.sign("x"))
        sim.run_until(20.0)
        assert fds[2].suspected == frozenset({1})

    def test_detected_idempotent(self):
        sim, fds = make_world()
        fds[2].detected(1)
        fds[2].detected(1)
        assert sim.log.count("fd.detected", process=2) == 1

    def test_cancel_does_not_clear_detected(self):
        sim, fds = make_world()
        fds[2].detected(1)
        fds[2].cancel()
        assert fds[2].suspected == frozenset({1})


class TestSubscription:
    def test_subscribers_get_updates(self):
        sim, fds = make_world(timeout=5.0)
        published = []
        fds[2].subscribe_suspected(published.append)
        fds[2].expect(1, kind_is("m"))
        sim.run_until(20.0)
        assert frozenset({1}) in published

    def test_timeout_republishes_even_unchanged(self):
        # Each expectation deadline is a fresh <SUSPECTED, S> event even
        # if the set did not change (drives enumeration-mode XPaxos).
        sim, fds = make_world(timeout=5.0)
        published = []
        fds[2].subscribe_suspected(published.append)
        fds[2].expect(1, kind_is("m"))
        fds[2].expect(1, kind_is("m2"))
        sim.run_until(20.0)
        assert published.count(frozenset({1})) == 2


class TestTimeoutPolicy:
    def test_defaults(self):
        policy = TimeoutPolicy(base_timeout=4.0)
        assert policy.timeout_for(1) == 4.0

    def test_doubling_and_cap(self):
        policy = TimeoutPolicy(base_timeout=4.0, max_timeout=10.0)
        assert policy.record_false_suspicion(1) == 8.0
        assert policy.record_false_suspicion(1) == 10.0  # capped
        assert policy.timeout_for(2) == 4.0  # per-source

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TimeoutPolicy(base_timeout=0)
        with pytest.raises(ConfigurationError):
            TimeoutPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            TimeoutPolicy(base_timeout=10.0, max_timeout=5.0)
