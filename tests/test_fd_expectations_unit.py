"""Direct unit tests for the expectation records and predicate helpers."""

from repro.fd.expectations import Expectation, ExpectationHandle, kind_and, kind_is


def make_expectation(**overrides):
    defaults = dict(
        source=3,
        predicate=kind_is("m"),
        group="g",
        deadline=10.0,
        label="t",
    )
    defaults.update(overrides)
    return Expectation(**defaults)


class TestExpectationStates:
    def test_fresh_expectation_is_pending(self):
        expectation = make_expectation()
        assert expectation.pending
        assert not expectation.open_suspicion

    def test_fulfilled_not_pending(self):
        expectation = make_expectation()
        expectation.fulfilled = True
        assert not expectation.pending
        assert not expectation.open_suspicion

    def test_timed_out_becomes_open_suspicion(self):
        expectation = make_expectation()
        expectation.timed_out = True
        assert not expectation.pending
        assert expectation.open_suspicion

    def test_late_fulfilment_closes_suspicion(self):
        expectation = make_expectation()
        expectation.timed_out = True
        expectation.fulfilled = True
        assert not expectation.open_suspicion

    def test_cancelled_closes_everything(self):
        expectation = make_expectation()
        expectation.timed_out = True
        expectation.cancelled = True
        assert not expectation.open_suspicion

    def test_ids_are_unique(self):
        assert make_expectation().eid != make_expectation().eid


class TestMatching:
    def test_matches_requires_source_and_predicate(self):
        expectation = make_expectation()
        assert expectation.matches("m", None, 3)
        assert not expectation.matches("m", None, 4)
        assert not expectation.matches("x", None, 3)

    def test_kind_is(self):
        predicate = kind_is("ping")
        assert predicate("ping", object())
        assert not predicate("pong", object())

    def test_kind_and(self):
        predicate = kind_and("ping", lambda payload: payload == 7)
        assert predicate("ping", 7)
        assert not predicate("ping", 8)
        assert not predicate("pong", 7)


class TestHandle:
    def test_handle_reflects_state(self):
        expectation = make_expectation()
        cancelled = []
        handle = ExpectationHandle(expectation, cancelled.append)
        assert handle.pending and handle.source == 3 and handle.label == "t"
        expectation.fulfilled = True
        assert handle.fulfilled and not handle.pending

    def test_handle_cancel_delegates(self):
        expectation = make_expectation()
        cancelled = []
        handle = ExpectationHandle(expectation, cancelled.append)
        handle.cancel()
        assert cancelled == [expectation]

    def test_timed_out_property(self):
        expectation = make_expectation()
        handle = ExpectationHandle(expectation, lambda e: None)
        expectation.timed_out = True
        assert handle.timed_out
