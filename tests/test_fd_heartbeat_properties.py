"""Heartbeat module + failure-detector property checkers (Section II/IV-B).

These tests realize the paper's failure taxonomy: each failure class is
injected via the adversary and the promised detectability level is
asserted through the property checkers.
"""

import pytest

from repro.failures.adversary import Adversary
from repro.failures.classification import DETECTABILITY, Detectability, FailureClass
from repro.fd.detector import FailureDetector
from repro.fd.heartbeat import HeartbeatModule
from repro.fd.properties import (
    detection_is_permanent,
    eventual_strong_accuracy_holds,
    eventually_detects,
    expectation_completeness_holds,
    false_suspicions,
    permanently_detects,
    suspicion_intervals,
)
from repro.fd.timers import TimeoutPolicy
from repro.sim.runtime import Simulation, SimulationConfig


def heartbeat_world(n=4, seed=3, gst=0.0, base_timeout=4.0, period=2.0):
    sim = Simulation(SimulationConfig(n=n, seed=seed, gst=gst, delta=1.0))
    fds = {}
    for pid in sim.pids:
        host = sim.host(pid)
        fds[pid] = FailureDetector(host, TimeoutPolicy(base_timeout=base_timeout))
        host.add_module(HeartbeatModule(host, n=n, period=period))
    return sim, fds


class TestFaultFree:
    def test_no_suspicions_ever(self):
        sim, fds = heartbeat_world()
        sim.run_until(100.0)
        assert all(fd.suspected == frozenset() for fd in fds.values())
        assert eventual_strong_accuracy_holds(sim.log, sim.pids, 0.0)
        assert not false_suspicions(sim.log, sim.pids)

    def test_expectation_accounting(self):
        sim, fds = heartbeat_world()
        sim.run_until(100.0)
        assert all(expectation_completeness_holds(fd) for fd in fds.values())


class TestCrash:
    """Crash = repeated omission; eventual (here: lasting) detection."""

    def test_crash_detected_by_all_correct(self):
        sim, fds = heartbeat_world()
        sim.at(10.0, lambda: sim.host(4).crash())
        sim.run_until(100.0)
        for pid in (1, 2, 3):
            assert fds[pid].suspected == frozenset({4})
            assert eventually_detects(sim.log, pid, 4)

    def test_accuracy_preserved_among_correct(self):
        sim, fds = heartbeat_world()
        sim.at(10.0, lambda: sim.host(4).crash())
        sim.run_until(100.0)
        assert eventual_strong_accuracy_holds(sim.log, [1, 2, 3], 0.0)


class TestRepeatedOmission:
    def test_per_link_omission_detected_only_on_that_link(self):
        # p4 mutes its heartbeats to p1 only: p1 suspects, p2/p3 do not.
        sim, fds = heartbeat_world()
        adversary = Adversary(sim)
        adversary.omit_links(4, dsts={1}, kinds={"heartbeat"}, start=10.0)
        sim.run_until(120.0)
        assert fds[1].suspected == frozenset({4})
        assert fds[2].suspected == frozenset()
        assert fds[3].suspected == frozenset()

    def test_taxonomy_says_eventual(self):
        assert DETECTABILITY[FailureClass.REPEATED_OMISSION] is Detectability.EVENTUAL


class TestTransientOmission:
    def test_bounded_omission_window_eventually_forgiven(self):
        # Omissions only in [10, 20): suspicions may appear but must be
        # gone by the end (single omissions are NOT permanently detected).
        sim, fds = heartbeat_world()
        adversary = Adversary(sim)
        adversary.omit_links(4, kinds={"heartbeat"}, start=10.0, end=20.0)
        sim.run_until(200.0)
        for pid in (1, 2, 3):
            assert 4 not in fds[pid].suspected

    def test_taxonomy_says_none(self):
        assert DETECTABILITY[FailureClass.OMISSION] is Detectability.NONE


class TestTiming:
    def test_bounded_delay_eventually_tolerated(self):
        # Constant extra delay: adaptive timeouts grow past it, so
        # suspicion raises must stop eventually.
        sim, fds = heartbeat_world(base_timeout=4.0)
        adversary = Adversary(sim)
        adversary.delay_links(4, extra_delay=6.0, start=10.0)
        sim.run_until(400.0)
        # After timeouts adapt, no further suspicion raises of p4.
        late_raises = [
            e for e in sim.log.events(kind="fd.suspect")
            if e.time > 300.0 and e.payload.get("target") == 4
        ]
        assert late_raises == []

    def test_increasing_delay_suspected_again_and_again(self):
        # Heartbeat spacing alone cannot re-detect a growing delay (stale
        # beats keep arriving at a stretched but bounded spacing); the
        # ping-pong probe measures *response* time and re-suspects
        # whenever the growth overtakes the doubled timeout — eventual
        # detection of increasing timing failures (Section II).
        from repro.fd.heartbeat import PingPongModule
        from repro.fd.timers import TimeoutPolicy
        from repro.fd.detector import FailureDetector
        from repro.sim.runtime import Simulation, SimulationConfig

        sim = Simulation(SimulationConfig(n=4, seed=3, gst=0.0, delta=1.0))
        for pid in sim.pids:
            host = sim.host(pid)
            FailureDetector(host, TimeoutPolicy(base_timeout=4.0))
            host.add_module(PingPongModule(host, n=4, period=4.0))
        adversary = Adversary(sim)
        adversary.increasing_delay(4, growth_per_unit=1.0, start=10.0)
        sim.run_until(600.0)
        intervals = suspicion_intervals(sim.log, 1, 4)
        assert len(intervals) >= 2

    def test_taxonomy(self):
        assert DETECTABILITY[FailureClass.TIMING] is Detectability.NONE
        assert (
            DETECTABILITY[FailureClass.INCREASING_TIMING] is Detectability.EVENTUAL
        )


class TestEventualSynchronyWithLateGst:
    def test_false_suspicions_stop_after_stabilization(self):
        # Before GST delays reach 10 units while timeouts start at 4:
        # false suspicions happen, timeouts double, accuracy returns.
        sim, fds = heartbeat_world(seed=7, gst=60.0, base_timeout=4.0)
        sim.run_until(400.0)
        assert eventual_strong_accuracy_holds(sim.log, sim.pids, 200.0)
        # And there were indeed false suspicions early on (the test is
        # vacuous otherwise).
        assert false_suspicions(sim.log, sim.pids, 0.0)


class TestDetectedPermanence:
    def test_detected_never_unsuspected(self):
        sim, fds = heartbeat_world()
        sim.at(5.0, lambda: fds[1].detected(3))
        sim.run_until(100.0)
        assert detection_is_permanent(sim.log)
        assert permanently_detects(sim.log, 1, 3)

    def test_commission_taxonomy(self):
        assert DETECTABILITY[FailureClass.COMMISSION] is Detectability.PERMANENT
