"""Last-mile scenario tests: mid-flight failures and double faults."""

from repro.core.spec import agreement_holds, no_link_suspicion_holds
from repro.leadercentric import build_star_system
from tests.test_core_chain_selection import build_cs_world


class TestStarMidFlightCrash:
    def test_leader_crash_with_requests_in_flight(self):
        # The leader dies the instant the first requests are in flight:
        # retransmission + SYNC/ADOPT recover them under the new leader.
        system = build_star_system(n=7, f=2, clients=2, seed=17, client_retry=15.0)
        system.adversary.crash(1, at=2.0)
        system.run(1200.0)
        assert system.total_completed() == 40
        assert system.histories_consistent()
        assert system.current_config()[0] != 1

    def test_two_sequential_leader_crashes(self):
        system = build_star_system(n=7, f=2, clients=1, seed=19, client_retry=15.0)
        system.adversary.crash(1, at=10.0)

        def crash_next_leader():
            leader = system.current_config()[0]
            if leader != 1:
                system.adversary.crash(leader, at=system.sim.now + 1.0)

        system.sim.at(120.0, crash_next_leader)
        system.run(1500.0)
        assert system.total_completed() == 20
        assert system.histories_consistent()
        leader, members = system.current_config()
        assert all(system.sim.host(m).running for m in members if m == leader)


class TestChainDoubleCrash:
    def test_two_crashes_reorder_chain(self):
        sim, modules = build_cs_world(5, 2)
        sim.at(10.0, lambda: sim.host(1).crash())
        sim.at(20.0, lambda: sim.host(3).crash())
        sim.run_until(250.0)
        correct = [modules[p] for p in (2, 4, 5)]
        chains = {m.chain for m in correct}
        assert len(chains) == 1
        final = chains.pop()
        assert not {1, 3} & set(final)
        assert agreement_holds(correct)
        assert no_link_suspicion_holds(correct)
