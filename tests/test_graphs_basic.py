"""Tests for SuspectGraph and vertex cover."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.suspect_graph import SuspectGraph
from repro.graphs.vertex_cover import (
    greedy_cover_upper_bound,
    minimum_vertex_cover_size,
    vertex_cover_at_most,
)
from repro.util.errors import ConfigurationError


def random_graph_strategy(max_n=8):
    """Hypothesis strategy for (n, edges) pairs."""

    @st.composite
    def build(draw):
        n = draw(st.integers(2, max_n))
        pairs = list(itertools.combinations(range(1, n + 1), 2))
        edges = draw(st.lists(st.sampled_from(pairs), max_size=12, unique=True))
        return n, edges

    return build()


def brute_force_min_cover(graph: SuspectGraph) -> int:
    edges = graph.edges()
    if not edges:
        return 0
    for k in range(0, graph.n + 1):
        for combo in itertools.combinations(range(1, graph.n + 1), k):
            cover = set(combo)
            if all(u in cover or v in cover for u, v in edges):
                return k
    return graph.n


class TestSuspectGraph:
    def test_add_and_query(self):
        g = SuspectGraph(4)
        assert g.add_edge(1, 3)
        assert g.has_edge(3, 1)  # undirected
        assert g.degree(1) == 1
        assert g.neighbors(3) == frozenset({1})

    def test_add_duplicate_returns_false(self):
        g = SuspectGraph(4, [(1, 2)])
        assert not g.add_edge(2, 1)
        assert g.edge_count() == 1

    def test_remove_edge(self):
        g = SuspectGraph(4, [(1, 2)])
        assert g.remove_edge(2, 1)
        assert not g.has_edge(1, 2)
        assert not g.remove_edge(1, 2)

    def test_rejects_self_loop(self):
        with pytest.raises(ConfigurationError):
            SuspectGraph(4, [(2, 2)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            SuspectGraph(4, [(1, 5)])

    def test_isolated_nodes(self):
        g = SuspectGraph(5, [(1, 2)])
        assert g.isolated_nodes() == [3, 4, 5]

    def test_is_independent(self):
        g = SuspectGraph(5, [(1, 2), (2, 3)])
        assert g.is_independent({1, 3, 4})
        assert not g.is_independent({1, 2})
        assert g.is_independent(set())

    def test_contains_edges(self):
        g = SuspectGraph(5, [(1, 2), (3, 4)])
        assert g.contains_edges([(2, 1)])
        assert not g.contains_edges([(1, 2), (1, 3)])

    def test_without_node_edges(self):
        g = SuspectGraph(4, [(1, 2), (2, 3), (3, 4)])
        stripped = g.without_node_edges(2)
        assert stripped.edges() == frozenset({(3, 4)})
        assert g.edge_count() == 3  # original untouched

    def test_equality_and_copy(self):
        g = SuspectGraph(4, [(1, 2)])
        assert g.copy() == g
        assert g != SuspectGraph(4, [(1, 3)])
        assert g != SuspectGraph(5, [(1, 2)])

    def test_iter_sorted(self):
        g = SuspectGraph(5, [(4, 5), (1, 2)])
        assert list(g) == [(1, 2), (4, 5)]


class TestVertexCover:
    def test_empty_graph(self):
        g = SuspectGraph(4)
        assert vertex_cover_at_most(g, 0)
        assert minimum_vertex_cover_size(g) == 0

    def test_single_edge(self):
        g = SuspectGraph(3, [(1, 2)])
        assert not vertex_cover_at_most(g, 0)
        assert vertex_cover_at_most(g, 1)
        assert minimum_vertex_cover_size(g) == 1

    def test_triangle_needs_two(self):
        g = SuspectGraph(3, [(1, 2), (2, 3), (1, 3)])
        assert not vertex_cover_at_most(g, 1)
        assert vertex_cover_at_most(g, 2)

    def test_star_needs_one(self):
        g = SuspectGraph(6, [(1, k) for k in range(2, 7)])
        assert vertex_cover_at_most(g, 1)
        assert not vertex_cover_at_most(g, 0)

    def test_matching_needs_size(self):
        g = SuspectGraph(6, [(1, 2), (3, 4), (5, 6)])
        assert minimum_vertex_cover_size(g) == 3

    def test_negative_k(self):
        assert not vertex_cover_at_most(SuspectGraph(2), -1)

    @settings(max_examples=60, deadline=None)
    @given(random_graph_strategy())
    def test_matches_brute_force(self, case):
        n, edges = case
        g = SuspectGraph(n, edges)
        assert minimum_vertex_cover_size(g) == brute_force_min_cover(g)

    @settings(max_examples=40, deadline=None)
    @given(random_graph_strategy())
    def test_greedy_bound_is_valid_2_approx(self, case):
        n, edges = case
        g = SuspectGraph(n, edges)
        optimum = minimum_vertex_cover_size(g)
        bound = greedy_cover_upper_bound(g)
        assert optimum <= bound <= 2 * optimum
