"""Tests for independent-set search (Algorithm 1's quorum finder)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.independent_set import (
    all_independent_sets,
    has_independent_set,
    lex_first_independent_set,
)
from repro.graphs.suspect_graph import SuspectGraph
from tests.test_graphs_basic import random_graph_strategy


def brute_force_independent_sets(graph, q):
    out = []
    for combo in itertools.combinations(range(1, graph.n + 1), q):
        if graph.is_independent(combo):
            out.append(frozenset(combo))
    return out


class TestExistence:
    def test_empty_graph_any_size(self):
        g = SuspectGraph(5)
        assert has_independent_set(g, 5)
        assert not has_independent_set(g, 6)

    def test_zero_size_always_exists(self):
        g = SuspectGraph(2, [(1, 2)])
        assert has_independent_set(g, 0)

    def test_complete_graph_max_one(self):
        g = SuspectGraph(4, list(itertools.combinations(range(1, 5), 2)))
        assert has_independent_set(g, 1)
        assert not has_independent_set(g, 2)

    def test_fig4_epoch2_has_no_size3_set(self):
        # Reconstruction of Figure 4 in epoch 2: triangle 1-2-5 plus (3,4).
        g = SuspectGraph(5, [(1, 2), (2, 5), (1, 5), (3, 4)])
        assert not has_independent_set(g, 3)

    def test_fig4_epoch3_has_size3_sets(self):
        # Epoch 3 drops the (3,4) edge.
        g = SuspectGraph(5, [(1, 2), (2, 5), (1, 5)])
        assert has_independent_set(g, 3)


class TestLexFirst:
    def test_empty_graph_takes_smallest_ids(self):
        g = SuspectGraph(5)
        assert lex_first_independent_set(g, 3) == frozenset({1, 2, 3})

    def test_fig4_epoch3_selects_134(self):
        # The paper lists {1,3,4} and {3,4,5}; lexicographic order picks {1,3,4}.
        g = SuspectGraph(5, [(1, 2), (2, 5), (1, 5)])
        assert lex_first_independent_set(g, 3) == frozenset({1, 3, 4})

    def test_returns_none_when_impossible(self):
        g = SuspectGraph(3, [(1, 2), (2, 3), (1, 3)])
        assert lex_first_independent_set(g, 2) is None

    def test_oversized_request(self):
        assert lex_first_independent_set(SuspectGraph(3), 4) is None

    def test_zero_request(self):
        assert lex_first_independent_set(SuspectGraph(3), 0) == frozenset()

    def test_backtracking_needed_case(self):
        # Greedy-from-1 takes {1}, blocking 2 and 3; but {1,4,5} works via
        # backtracking while naive greedy {1,2,..} fails.
        g = SuspectGraph(5, [(1, 2), (1, 3), (4, 2), (5, 3)])
        assert lex_first_independent_set(g, 3) == frozenset({1, 4, 5})

    @settings(max_examples=80, deadline=None)
    @given(random_graph_strategy(), st.integers(1, 5))
    def test_matches_brute_force_minimum(self, case, q):
        n, edges = case
        graph = SuspectGraph(n, edges)
        expected = brute_force_independent_sets(graph, q)
        result = lex_first_independent_set(graph, q)
        if not expected:
            assert result is None
            assert not has_independent_set(graph, q)
        else:
            assert has_independent_set(graph, q)
            assert result == min(expected, key=lambda s: tuple(sorted(s)))

    @settings(max_examples=40, deadline=None)
    @given(random_graph_strategy(), st.integers(1, 4))
    def test_result_is_independent(self, case, q):
        n, edges = case
        graph = SuspectGraph(n, edges)
        result = lex_first_independent_set(graph, q)
        if result is not None:
            assert len(result) == q
            assert graph.is_independent(result)


class TestEnumeration:
    def test_yields_in_lexicographic_order(self):
        g = SuspectGraph(4, [(1, 2)])
        sets = list(all_independent_sets(g, 2))
        keys = [tuple(sorted(s)) for s in sets]
        assert keys == sorted(keys)

    def test_matches_brute_force(self):
        g = SuspectGraph(5, [(1, 2), (2, 5), (1, 5)])
        assert set(all_independent_sets(g, 3)) == set(
            brute_force_independent_sets(g, 3)
        )

    def test_empty_for_impossible(self):
        g = SuspectGraph(3, [(1, 2), (2, 3), (1, 3)])
        assert list(all_independent_sets(g, 2)) == []
