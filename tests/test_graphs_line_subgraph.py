"""Tests for line subgraphs, leaders, possible followers (Defs. 1-2)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.line_subgraph import (
    LineSubgraph,
    extend_with_edge,
    is_line_subgraph,
    leader_of,
    maximal_line_subgraph,
    possible_followers,
)
from repro.graphs.suspect_graph import SuspectGraph
from repro.util.errors import ConfigurationError
from tests.test_graphs_basic import random_graph_strategy


def brute_force_max_leader(graph: SuspectGraph) -> int:
    """Max over ALL line subgraphs of the designated leader (Def. 1)."""
    edges = sorted(graph.edges())
    best = 1
    for r in range(len(edges) + 1):
        for combo in itertools.combinations(edges, r):
            try:
                line = LineSubgraph(graph.n, combo)
            except ConfigurationError:
                continue
            leader = leader_of(line)
            if leader is not None and leader > best:
                best = leader
    return best


class TestLineSubgraphValidation:
    def test_empty_is_valid(self):
        line = LineSubgraph(5)
        assert line.edges() == frozenset()
        assert line.leader() == 1

    def test_path_is_valid(self):
        line = LineSubgraph(5, [(1, 2), (2, 3)])
        assert line.degree(2) == 2
        assert line.contains(1) and not line.contains(4)

    def test_rejects_degree_three(self):
        with pytest.raises(ConfigurationError):
            LineSubgraph(5, [(1, 2), (1, 3), (1, 4)])

    def test_rejects_cycle(self):
        with pytest.raises(ConfigurationError):
            LineSubgraph(4, [(1, 2), (2, 3), (1, 3)])

    def test_rejects_node_out_of_range(self):
        with pytest.raises(ConfigurationError):
            LineSubgraph(3, [(1, 4)])

    def test_leader_is_min_degree_zero(self):
        line = LineSubgraph(5, [(1, 2), (4, 5)])
        assert line.leader() == 3

    def test_leader_none_when_all_covered(self):
        line = LineSubgraph(4, [(1, 2), (3, 4)])
        assert line.leader() is None

    def test_equality_and_hash(self):
        a = LineSubgraph(4, [(1, 2)])
        b = LineSubgraph(4, [(2, 1)])
        assert a == b and hash(a) == hash(b)


class TestIsLineSubgraph:
    def test_must_be_subgraph_of_g(self):
        g = SuspectGraph(4, [(1, 2)])
        assert is_line_subgraph([(1, 2)], g)
        assert not is_line_subgraph([(1, 3)], g)

    def test_must_be_structurally_valid(self):
        g = SuspectGraph(4, [(1, 2), (2, 3), (1, 3)])
        assert not is_line_subgraph([(1, 2), (2, 3), (1, 3)], g)  # cycle
        assert is_line_subgraph([(1, 2), (2, 3)], g)


class TestMaximalLineSubgraph:
    def test_empty_graph_leader_one(self):
        line = maximal_line_subgraph(SuspectGraph(5))
        assert line.leader() == 1
        assert line.edges() == frozenset()

    def test_single_edge_pushes_leader_past_it(self):
        line = maximal_line_subgraph(SuspectGraph(4, [(1, 2)]))
        assert line.leader() == 3

    def test_isolated_p1_pins_leader(self):
        # p1 has no suspicions: no line subgraph can cover it.
        line = maximal_line_subgraph(SuspectGraph(5, [(2, 3), (4, 5)]))
        assert line.leader() == 1

    def test_example2_edge_changes_leader(self):
        # Example 2's mechanism: a new suspicion between the current
        # leader and a possible follower strictly increases the leader.
        g_before = SuspectGraph(7, [(1, 2), (2, 3)])
        before = maximal_line_subgraph(g_before)
        leader = before.leader()
        follower = min(possible_followers(before) - {leader})
        g_after = g_before.copy()
        g_after.add_edge(leader, follower)
        after = maximal_line_subgraph(g_after)
        assert after.leader() > leader

    def test_deterministic(self):
        g = SuspectGraph(7, [(1, 2), (2, 3), (4, 5), (5, 6)])
        assert maximal_line_subgraph(g) == maximal_line_subgraph(g.copy())

    def test_leader_edges_excluded(self):
        # The leader must have degree 0, so its edges cannot be used.
        g = SuspectGraph(4, [(1, 2), (2, 3), (3, 4)])
        line = maximal_line_subgraph(g)
        leader = line.leader()
        assert line.degree(leader) == 0

    @settings(max_examples=50, deadline=None)
    @given(random_graph_strategy(max_n=6))
    def test_matches_brute_force_leader(self, case):
        n, edges = case
        graph = SuspectGraph(n, edges)
        line = maximal_line_subgraph(graph)
        assert line.leader() == brute_force_max_leader(graph)

    @settings(max_examples=50, deadline=None)
    @given(random_graph_strategy(max_n=7))
    def test_result_is_line_subgraph_of_g(self, case):
        n, edges = case
        graph = SuspectGraph(n, edges)
        line = maximal_line_subgraph(graph)
        assert is_line_subgraph(line.edges(), graph)


class TestPossibleFollowers:
    def test_everyone_on_empty_line(self):
        line = LineSubgraph(5)
        assert possible_followers(line) == frozenset(range(1, 6))

    def test_p3_center_excluded(self):
        # Example 1's p2 pattern: center of a two-edge path.
        line = LineSubgraph(5, [(1, 2), (2, 3)])
        assert possible_followers(line) == frozenset({1, 3, 4, 5})

    def test_long_path_interior_allowed(self):
        # Interior of a 3-edge path has a degree-2 neighbor: allowed.
        line = LineSubgraph(5, [(1, 2), (2, 3), (3, 4)])
        followers = possible_followers(line)
        assert 2 in followers and 3 in followers

    def test_isolated_edge_endpoints_allowed(self):
        line = LineSubgraph(4, [(1, 2)])
        assert possible_followers(line) == frozenset({1, 2, 3, 4})

    def test_two_separate_p3s(self):
        line = LineSubgraph(7, [(1, 2), (2, 3), (4, 5), (5, 6)])
        assert possible_followers(line) == frozenset({1, 3, 4, 6, 7})


class TestExtendWithEdge:
    """Validates the Definition-2 rationale: a new (leader, possible
    follower) suspicion always yields a line subgraph with a larger
    leader."""

    def _check(self, graph_edges, n=7):
        graph = SuspectGraph(n, graph_edges)
        line = maximal_line_subgraph(graph)
        leader = line.leader()
        for follower in sorted(possible_followers(line) - {leader}):
            g2 = graph.copy()
            g2.add_edge(leader, follower)
            extended = extend_with_edge(line, g2, leader, follower)
            assert is_line_subgraph(extended.edges(), g2)
            assert extended.leader() > leader

    def test_empty_graph(self):
        self._check([])

    def test_single_path(self):
        self._check([(1, 2), (2, 3)])

    def test_two_components(self):
        self._check([(1, 2), (4, 5), (5, 6)])

    def test_requires_edge_in_graph(self):
        graph = SuspectGraph(4)
        line = LineSubgraph(4)
        with pytest.raises(ConfigurationError):
            extend_with_edge(line, graph, 1, 2)

    def test_rejects_non_possible_follower(self):
        graph = SuspectGraph(5, [(2, 3), (3, 4), (1, 3)])
        line = LineSubgraph(5, [(2, 3), (3, 4)])  # 3 is a P3 center
        with pytest.raises(ConfigurationError):
            extend_with_edge(line, graph, 1, 3)

    @settings(max_examples=50, deadline=None)
    @given(random_graph_strategy(max_n=6))
    def test_maximality_vs_leader_adjacent_followers(self, case):
        # Consequence used by Algorithm 2: in a maximal line subgraph, a
        # possible follower adjacent (in G) to the leader would allow an
        # extension with a strictly larger leader — so such adjacency can
        # only occur when the extension covers *every* node (designating
        # no leader at all, hence not contradicting maximality).
        n, edges = case
        graph = SuspectGraph(n, edges)
        line = maximal_line_subgraph(graph)
        leader = line.leader()
        for follower in possible_followers(line) - {leader}:
            if graph.has_edge(leader, follower):
                extended = extend_with_edge(line, graph, leader, follower)
                assert extended.leader() is None
