"""Equivalence of the incremental hot path with the from-scratch seed path.

The §5.13 machinery (maintained suspect-graph view, band-delta epoch
probes, quorum-search memo, gossip-forward dedup) is supposed to be a
*pure* optimization: every observable decision must be byte-identical to
the seed's rebuild-everything implementation.  These tests check that
claim three ways:

1. property-style randomized streams of ``mark``/``merge_row`` writes
   (including Byzantine garbage) against a from-scratch rebuild after
   every single write;
2. a full dual simulation — ``incremental=True`` vs ``incremental=False``
   worlds fed the same seed and crash — compared on their complete
   quorum-event traces;
3. targeted unit tests for the memo hit, the forward dedup, and the
   scheduler's O(1) ``pending()`` counter.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Tuple

from repro.core.messages import KIND_UPDATE, UpdatePayload
from repro.core.quorum_selection import QuorumSelectionModule
from repro.core.suspicion_matrix import SuspicionMatrix
from repro.fd.detector import FailureDetector
from repro.fd.timers import TimeoutPolicy
from repro.graphs.independent_set import lex_first_independent_set
from repro.sim.runtime import Simulation, SimulationConfig
from repro.sim.scheduler import Scheduler


# --------------------------------------------------------------------------
# 1. Incremental graph view == from-scratch rebuild, under random writes
# --------------------------------------------------------------------------


def _random_write(rng: random.Random, matrix: SuspicionMatrix, epoch: int) -> None:
    """One randomized matrix mutation: a mark, or a (possibly garbage) row."""
    n = matrix.n
    if rng.random() < 0.5:
        suspector, suspectee = rng.sample(range(1, n + 1), 2)
        matrix.mark(suspector, suspectee, max(1, epoch + rng.randint(-2, 3)))
        return
    suspector = rng.randint(1, n)
    row = [0] * (n + 1)
    for _ in range(rng.randint(1, n)):
        k = rng.randint(0, n)
        roll = rng.random()
        if roll < 0.15:
            row[k] = rng.choice(["junk", -3, None, True, 2.5])  # Byzantine
        else:
            row[k] = max(0, epoch + rng.randint(-3, 4))
    if rng.random() < 0.3:
        row = row[1:]  # the 0-based dense wire arity, also accepted
    matrix.merge_row(suspector, row)


def _brute_force_lex_first(graph, q):
    for combo in itertools.combinations(range(1, graph.n + 1), q):
        if graph.is_independent(combo):
            return frozenset(combo)
    return None


def test_incremental_view_matches_rebuild_under_random_streams():
    for n, f, slack, seed in [(5, 2, None, 11), (6, 2, 1, 12), (7, 2, 1024, 13), (9, 3, 2, 14)]:
        rng = random.Random(seed)
        matrix = SuspicionMatrix(n)
        epoch = 1
        q = n - f
        for step in range(200):
            _random_write(rng, matrix, epoch)
            if rng.random() < 0.1:
                epoch += rng.randint(1, 2)  # re-track: exercises the rebuild path
            view = matrix.suspect_graph_view(epoch, slack)
            scratch = matrix.build_suspect_graph(epoch, slack)
            assert view == scratch, f"n={n} slack={slack} step={step}"
            fast = lex_first_independent_set(view, q)
            slow = lex_first_independent_set(scratch, q)
            assert fast == slow
            if n <= 7:
                assert fast == _brute_force_lex_first(scratch, q)


def test_probe_graphs_match_rebuild_at_every_candidate():
    for slack in (None, 1, 1024):
        rng = random.Random(99)
        matrix = SuspicionMatrix(6)
        for _ in range(60):
            _random_write(rng, matrix, epoch=3)
        values = sorted({v for _, _, v in matrix.entries()})
        candidates = sorted(
            {v + 1 for v in values if v + 1 > 1}
            | ({v - slack for v in values if v - slack > 1} if slack is not None else set())
        )
        for candidate, probed in matrix.iter_probe_graphs(1, candidates, slack):
            assert probed == matrix.build_suspect_graph(candidate, slack)


# --------------------------------------------------------------------------
# 2. Dual simulation: incremental world == from-scratch world
# --------------------------------------------------------------------------


def _build_world(n: int, f: int, incremental: bool):
    sim = Simulation(SimulationConfig(n=n, seed=7, gst=0.0, delta=1.0))
    modules: Dict[int, QuorumSelectionModule] = {}
    for pid in sim.pids:
        host = sim.host(pid)
        FailureDetector(host, TimeoutPolicy(base_timeout=4.0))
        from repro.fd.heartbeat import HeartbeatModule

        host.add_module(HeartbeatModule(host, n=n, period=2.0))
        modules[pid] = host.add_module(
            QuorumSelectionModule(host, n=n, f=f, incremental=incremental)
        )
    return sim, modules


def _quorum_trace(modules) -> Tuple:
    return tuple(
        (e.time, e.process, e.epoch, tuple(sorted(e.quorum)))
        for pid in sorted(modules)
        for e in modules[pid].quorum_events
    )


def test_incremental_world_reproduces_seed_trace_exactly():
    traces = {}
    epochs = {}
    for incremental in (False, True):
        sim, modules = _build_world(10, 3, incremental)
        sim.at(10.0, lambda sim=sim: sim.host(1).crash())
        sim.run_until(120.0)
        traces[incremental] = _quorum_trace(modules)
        epochs[incremental] = {pid: m.epoch for pid, m in modules.items()}
    assert traces[True] == traces[False]
    assert epochs[True] == epochs[False]
    assert traces[True]  # the crash did produce quorum changes


# --------------------------------------------------------------------------
# 3. Targeted unit tests: memo hit, forward dedup, O(1) pending()
# --------------------------------------------------------------------------


def _bare_qs_module(n: int = 4, f: int = 1, pid: int = 2):
    sim = Simulation(SimulationConfig(n=n, seed=1))
    host = sim.host(pid)
    module = host.add_module(
        QuorumSelectionModule(host, n=n, f=f, use_fd=False)
    )
    return sim, host, module


def test_quorum_search_memo_hits_on_unchanged_band():
    sim, host, module = _bare_qs_module(n=5, f=2)
    module.matrix.mark(2, 1, 1)
    module._update_quorum()
    searches = module.quorum_searches
    assert module.searches_memoized == 0
    # Same graph uid/version/epoch/q: the memo answers, no new search.
    module._update_quorum()
    assert module.searches_memoized == 1
    assert module.quorum_searches == searches
    # A band-relevant write bumps the graph version: memo key misses.
    module.matrix.mark(3, 1, 1)
    module._update_quorum()
    assert module.quorum_searches == searches + 1


def test_forward_dedup_suppresses_repeat_gossip():
    sim, host, module = _bare_qs_module(n=4, f=1, pid=2)
    row_owner_sim = Simulation(SimulationConfig(n=4, seed=1))
    signer = row_owner_sim.host(3)
    payload = signer.authenticator.sign(UpdatePayload((0, 0, 0, 5, 0)))
    sent_before = sim.stats.sent_by_kind.get(KIND_UPDATE, 0)
    module._forward_update(payload, src=3)  # forwards to {1, 4}
    after_first = sim.stats.sent_by_kind.get(KIND_UPDATE, 0)
    assert after_first - sent_before == 2
    assert module.forwards_suppressed == 0
    # Same signed message arriving via a different peer: only the peer not
    # yet served (p3 itself) is sent; p1 is suppressed, p4 was src.
    module._forward_update(payload, src=4)
    after_second = sim.stats.sent_by_kind.get(KIND_UPDATE, 0)
    assert after_second - after_first == 1
    assert module.forwards_suppressed == 1
    # Third arrival: everyone has been served once; both non-src peers
    # (p1 and p4) are suppressed, nothing is sent.
    module._forward_update(payload, src=3)
    assert sim.stats.sent_by_kind.get(KIND_UPDATE, 0) == after_second
    assert module.forwards_suppressed == 3


def test_scheduler_pending_is_exact_through_cancel_and_run():
    scheduler = Scheduler()
    events = [scheduler.schedule(float(i + 1), lambda: None) for i in range(5)]
    assert scheduler.pending() == 5
    events[0].cancelled = True
    events[3].cancelled = True
    assert scheduler.pending() == 3
    events[3].cancelled = False  # un-cancel while still queued
    assert scheduler.pending() == 4
    events[0].cancelled = True  # re-cancel of a cancelled event: no-op
    assert scheduler.pending() == 4
    scheduler.run_until(2.5)  # fires events[1] (t=2); skips cancelled t=1
    assert scheduler.pending() == 3
    # Cancelling an already-fired event must not corrupt the counter.
    events[1].cancelled = True
    assert scheduler.pending() == 3
    scheduler.run_to_quiescence()
    assert scheduler.pending() == 0
