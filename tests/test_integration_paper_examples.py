"""The paper's worked examples, reproduced end to end.

- Figure 4: the epoch mechanism restoring independent sets.
- Figure 5 / Theorem 4: the ``F+2`` adversary and its quorum count.
- Examples 1-2 (Section VIII): maximal line subgraphs and possible
  followers on 7-node graphs.
- Lemma 8: line subgraphs with 3f nodes vs independent sets.
"""

import itertools

import pytest

from repro.analysis.abstract import AbstractQuorumSelection
from repro.analysis.bounds import (
    observed_max_changes_claim,
    thm3_upper_bound,
    thm4_quorum_count,
)
from repro.core.suspicion_matrix import SuspicionMatrix
from repro.graphs.independent_set import (
    all_independent_sets,
    has_independent_set,
    lex_first_independent_set,
)
from repro.graphs.line_subgraph import (
    LineSubgraph,
    leader_of,
    maximal_line_subgraph,
    possible_followers,
)
from repro.graphs.suspect_graph import SuspectGraph


class TestFigure4:
    """5 processes; epoch-2 graph blocks all size-3 independent sets;
    raising the epoch drops the (p3, p4) edge and restores {1,3,4} and
    {3,4,5} — exactly the sets the caption names."""

    def setup_method(self):
        self.matrix = SuspicionMatrix(5)
        self.matrix.mark(1, 2, 3)
        self.matrix.mark(2, 5, 3)
        self.matrix.mark(1, 5, 3)
        self.matrix.mark(3, 4, 2)

    def test_epoch2_no_independent_set(self):
        graph = self.matrix.build_suspect_graph(2)
        assert not has_independent_set(graph, 3)

    def test_epoch3_restores_the_named_sets(self):
        graph = self.matrix.build_suspect_graph(3)
        sets = set(all_independent_sets(graph, 3))
        assert frozenset({1, 3, 4}) in sets
        assert frozenset({3, 4, 5}) in sets

    def test_epoch3_removes_the_edge_between_p3_p4(self):
        assert self.matrix.build_suspect_graph(2).has_edge(3, 4)
        assert not self.matrix.build_suspect_graph(3).has_edge(3, 4)

    def test_lexicographic_choice_is_134(self):
        graph = self.matrix.build_suspect_graph(3)
        assert lex_first_independent_set(graph, 3) == frozenset({1, 3, 4})


class TestFigure5Theorem4:
    """f=3: all suspicions within a 5-node F+2 = {a,b,c,d,e} can be
    attributed to faulty sets {a,b,e} or {c,d,e}-style splits, and the
    adversary forces C(f+2,2) proposed quorums."""

    def test_abstract_game_reaches_the_bound_f2(self):
        # n chosen so the initial quorum contains F+2.
        model = AbstractQuorumSelection(6, 2)
        faulty = {1, 2}
        fired = 0
        while True:
            move = None
            for a, b in itertools.combinations(sorted(model.quorum), 2):
                if (a in faulty or b in faulty) and not model.graph.has_edge(a, b):
                    if {a, b} <= {1, 2, 3, 4}:  # stay inside F+2
                        move = (a, b)
                        break
            if move is None:
                break
            model.add_suspicion(*move)
            fired += 1
        assert model.changes == observed_max_changes_claim(2)
        # Proposed quorums = changes + the initial default = C(f+2, 2).
        assert model.changes + 1 == thm4_quorum_count(2)

    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_bounds_are_consistent(self, f):
        # The f(f+1) upper bound dominates the C(f+2,2)-1 observed max.
        assert observed_max_changes_claim(f) <= thm3_upper_bound(f)

    def test_every_suspicion_inside_quorum_forces_change(self):
        # Lemma 2 converse: an edge between two members of the current
        # quorum always invalidates it (no suspicion property).
        model = AbstractQuorumSelection(6, 2)
        changed = model.add_suspicion(1, 2)  # both in default {1,2,3,4}
        assert changed

    def test_suspicion_outside_quorum_changes_nothing(self):
        model = AbstractQuorumSelection(6, 2)
        assert not model.add_suspicion(5, 6)


class TestExample1:
    """A 7-node graph whose maximal line subgraph excludes its two-edge
    path center from the possible followers (the paper's p2)."""

    def test_p3_center_not_possible_follower(self):
        line = LineSubgraph(7, [(1, 2), (2, 3), (4, 5)])
        followers = possible_followers(line)
        assert 2 not in followers
        assert followers == frozenset({1, 3, 4, 5, 6, 7})

    def test_new_edge_to_center_does_not_change_max_line(self):
        # "A new edge (p2, p5) added to G would not change the maximal
        # line subgraph L": the leader cannot grow via a P3 center.
        g = SuspectGraph(7, [(1, 2), (2, 3), (4, 5)])
        before = maximal_line_subgraph(g)
        g2 = g.copy()
        g2.add_edge(2, 5)
        after = maximal_line_subgraph(g2)
        assert leader_of(after) == leader_of(before)


class TestExample2:
    """Adding an edge changes the leader and the maximal line subgraph;
    the old line subgraph was maximal even though extendable by edges."""

    def test_leader_strictly_increases_on_leader_edge(self):
        g = SuspectGraph(7, [(1, 2), (3, 4)])
        line = maximal_line_subgraph(g)
        leader = leader_of(line)
        follower = min(possible_followers(line) - {leader})
        g.add_edge(leader, follower)
        assert leader_of(maximal_line_subgraph(g)) > leader

    def test_maximality_is_about_leader_not_edge_count(self):
        # A line subgraph can be maximal while more edges could be added.
        g = SuspectGraph(7, [(1, 2), (2, 3), (3, 4), (4, 5)])
        line = maximal_line_subgraph(g)
        # Some graph edge is unused by the maximal line subgraph even
        # though adding it might be structurally legal.
        assert len(line.edges()) <= g.edge_count()


class TestLemma8:
    """Line subgraph with 3f nodes -> at most one independent set of size
    q, containing the leader and possible followers; 3f+1 nodes -> none."""

    def _random_saturating_case(self, f):
        # The tight Lemma-8a shape: f disjoint two-edge paths cover 3f
        # nodes with 2f edges (a line subgraph of maximal reach given
        # that every edge touches one of the f faulty centers); with
        # n = 3f + 1 and q = 2f + 1 exactly one independent set remains.
        n = 3 * f + 1
        edges = []
        for k in range(f):
            base = 3 * k + 1
            edges += [(base, base + 1), (base + 1, base + 2)]
        return SuspectGraph(n, edges), n, 2 * f + 1

    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_3f_nodes_unique_independent_set(self, f):
        graph, n, q = self._random_saturating_case(f)
        sets = list(all_independent_sets(graph, q))
        assert len(sets) == 1
        line = maximal_line_subgraph(graph)
        leader = leader_of(line)
        expected = set(sets[0])
        assert leader in expected
        # The unique set is the leader plus possible followers.
        allowed = possible_followers(line)
        assert expected - {leader} <= allowed

    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_3f_plus_1_nodes_no_independent_set(self, f):
        # Extend the tight case by one more edge so the line subgraph
        # touches 3f + 1 nodes: Lemma 8b says no q-IS survives.
        graph, n, q = self._random_saturating_case(f)
        graph.add_edge(3 * f, 3 * f + 1)
        assert not has_independent_set(graph, q)
