"""Online (full-stack) verification of the paper's bounds (E2-E4 logic).

These are the integration versions of the theorem checks: a complete
simulated system — eventually synchronous network, signed gossip, failure
detectors, the adversary of Theorem 4 — must respect the same numbers the
abstract analysis derives.
"""

import pytest

from repro.analysis.bounds import (
    cor10_total_bound,
    observed_max_changes_claim,
    thm3_upper_bound,
    thm9_per_epoch_bound,
)
from repro.analysis.runner import (
    run_follower_worst_case,
    run_random_adversary,
    run_thm4_adversary,
)


class TestTheorem4Online:
    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_adversary_achieves_exactly_the_claim(self, f):
        result = run_thm4_adversary(2 * f + 2, f, seed=3)
        assert result.suspicions_fired == observed_max_changes_claim(f)
        assert result.max_changes_per_epoch == observed_max_changes_claim(f)
        assert result.max_changes_per_epoch <= thm3_upper_bound(f)

    @pytest.mark.parametrize("f", [1, 2])
    def test_terminates_with_agreement_and_no_suspicion(self, f):
        result = run_thm4_adversary(2 * f + 2, f, seed=5)
        assert result.final_quorums_agree
        assert result.no_suspicion

    def test_epoch_never_advances_under_accuracy(self):
        # All suspicions have a faulty endpoint: the faulty set covers
        # every edge, so an independent set always survives (Section VII).
        result = run_thm4_adversary(6, 2, seed=7)
        assert result.max_epoch == 1

    def test_seed_invariance_of_count(self):
        counts = {
            run_thm4_adversary(6, 2, seed=seed).suspicions_fired
            for seed in (1, 2, 3)
        }
        assert counts == {observed_max_changes_claim(2)}


class TestTheorem3Random:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_random_noise_respects_per_epoch_bound(self, seed):
        f = 2
        result = run_random_adversary(6, f, seed=seed, duration=300.0)
        assert result.max_changes_per_epoch <= thm3_upper_bound(f)
        assert result.final_quorums_agree
        assert result.no_suspicion


class TestTheorem9Corollary10Online:
    @pytest.mark.parametrize("f", [1, 2])
    def test_leader_attack_within_bounds(self, f):
        result = run_follower_worst_case(f, seed=3)
        assert result.max_changes_per_epoch <= thm9_per_epoch_bound(f)
        assert result.quorum_changes_total <= cor10_total_bound(f)
        assert result.final_quorums_agree

    def test_adversary_actually_moves_the_leader(self):
        result = run_follower_worst_case(2, seed=3)
        assert result.final_leader is not None and result.final_leader > 1
        assert result.quorum_changes_total >= 2
