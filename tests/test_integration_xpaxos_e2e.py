"""End-to-end XPaxos experiments (the E5/E7/E8 logic as tests)."""

import pytest

from repro.analysis.runner import (
    measure_message_savings,
    run_xpaxos_crash_comparison,
)
from repro.xpaxos.system import build_system


class TestSelectionVsEnumeration:
    def test_same_faults_fewer_changes_with_selection(self):
        comparison = run_xpaxos_crash_comparison(
            n=5, f=2, crash_pids=(1,), seed=9, duration=900.0
        )
        selection_changes, enumeration_changes = comparison.view_changes()
        assert selection_changes < enumeration_changes
        sel_done, enum_done = comparison.completed()
        assert sel_done == 40 and enum_done == 40

    def test_both_modes_safe(self):
        comparison = run_xpaxos_crash_comparison(
            n=5, f=2, crash_pids=(1, 2), seed=11, duration=1200.0
        )
        assert comparison.selection.histories_consistent()
        assert comparison.enumeration.histories_consistent()

    def test_enumeration_walks_while_selection_jumps(self):
        comparison = run_xpaxos_crash_comparison(
            n=5, f=2, crash_pids=(1,), seed=9, duration=900.0
        )
        sel_views = {r.view for r in comparison.selection.correct_replicas()}
        enum_views = {r.view for r in comparison.enumeration.correct_replicas()}
        # Both converge to a single view whose quorum excludes p1.
        assert len(sel_views) == 1 and len(enum_views) == 1
        for system, views in (
            (comparison.selection, sel_views),
            (comparison.enumeration, enum_views),
        ):
            view = views.pop()
            quorum = system.replicas[2].policy.quorum_of(view)
            assert 1 not in quorum


class TestMessageSavings:
    def test_3f_plus_1_family(self):
        savings = measure_message_savings(2)
        # Per-broadcast drop is the paper's ~1/3 claim.
        assert savings.per_broadcast_reduction == pytest.approx(1 / 3, abs=0.01)
        # Total reduction is even larger (passive replicas stop sending).
        assert savings.total_reduction > 0.4

    def test_2f_plus_1_family(self):
        savings = measure_message_savings(2, two_f_plus_one=True)
        assert savings.per_broadcast_reduction == pytest.approx(1 / 2, abs=0.01)
        assert savings.total_reduction > 0.5

    def test_total_savings_grow_with_f_towards_asymptote(self):
        # Per-broadcast reduction is exactly f/(n-1) = 1/3 at every f;
        # the *total* reduction grows with f towards 5/9 as the passive
        # replicas' silence dominates.
        one = measure_message_savings(1)
        three = measure_message_savings(3)
        assert one.per_broadcast_reduction == pytest.approx(1 / 3)
        assert three.per_broadcast_reduction == pytest.approx(1 / 3)
        assert three.total_reduction > one.total_reduction
        assert three.total_reduction < 5 / 9


class TestQuorumSelectionDrivesViews:
    def test_omission_faulty_process_ends_outside_quorum(self):
        # A process that keeps omitting COMMITs on one link is eventually
        # kept out of the active quorum by Quorum Selection.
        system = build_system(n=5, f=2, mode="selection", clients=1, seed=21)
        system.adversary.omit_links(2, dsts={3}, kinds={"xp.commit"}, start=20.0)
        system.run(900.0)
        assert system.total_completed() == 20
        final_quorum = system.replicas[4].quorum
        assert not {2, 3} <= final_quorum
        assert system.histories_consistent()

    def test_gst_late_start_still_stabilizes(self):
        system = build_system(
            n=5, f=2, mode="selection", clients=1, seed=23,
            gst=50.0, fd_base_timeout=6.0, client_retry=60.0,
        )
        system.run(1500.0)
        assert system.total_completed() == 20
        assert system.histories_consistent()
