"""Tests for the Section IV-A leader-election wrapper."""

from repro.core import LeaderElection, leaders_agree
from repro.core.leader_election import last_trust_change
from repro.failures.strategies import FalseSuspicionInjector
from tests.conftest import build_qs_world


def elections_for(modules, pids):
    return {pid: LeaderElection(modules[pid]) for pid in pids}


class TestLeaderElection:
    def test_initial_leader_is_p1(self, qs_world_5_2):
        _, modules = qs_world_5_2
        election = LeaderElection(modules[1])
        assert election.leader == 1
        assert election.trust_events == []

    def test_crash_of_leader_elects_next(self, qs_world_5_2):
        sim, modules = qs_world_5_2
        elections = elections_for(modules, (2, 3, 4, 5))
        sim.at(10.0, lambda: sim.host(1).crash())
        sim.run_until(120.0)
        assert leaders_agree(elections.values())
        assert elections[2].leader == 2
        assert all(len(e.trust_events) >= 1 for e in elections.values())

    def test_crash_of_non_leader_keeps_leader(self, qs_world_5_2):
        sim, modules = qs_world_5_2
        elections = elections_for(modules, (1, 2, 4, 5))
        sim.at(10.0, lambda: sim.host(3).crash())
        sim.run_until(120.0)
        assert leaders_agree(elections.values())
        assert elections[1].leader == 1

    def test_single_accuser_can_demote(self, qs_world_5_2):
        # The paper's contrast with vote-based election: one (even false)
        # in-quorum suspicion is enough to change the quorum — and with
        # it, potentially, the leader.
        sim, modules = qs_world_5_2
        elections = elections_for(modules, (1, 2, 3, 4))
        sim.at(10.0, lambda: FalseSuspicionInjector(modules[2]).suspect(1))
        sim.run_until(120.0)
        assert leaders_agree(elections.values())
        # Edge (1,2): lex-first IS avoiding the pair is {1,3,4}; the
        # leader (min of quorum) survives here, but the quorum changed.
        assert elections[1].leader == 1
        assert modules[3].qlast == frozenset({1, 3, 4})

    def test_subscriber_callbacks_fire(self, qs_world_5_2):
        sim, modules = qs_world_5_2
        election = LeaderElection(modules[2])
        seen = []
        election.subscribe(seen.append)
        sim.at(10.0, lambda: sim.host(1).crash())
        sim.run_until(120.0)
        assert seen and seen[-1].leader == 2

    def test_stabilization_time_reported(self, qs_world_5_2):
        sim, modules = qs_world_5_2
        elections = elections_for(modules, (2, 3, 4, 5))
        sim.at(10.0, lambda: sim.host(1).crash())
        sim.run_until(120.0)
        assert 10.0 < last_trust_change(elections.values()) < 40.0

    def test_works_on_follower_selection_too(self, fs_world_7_2):
        sim, modules = fs_world_7_2
        elections = elections_for(modules, range(2, 8))
        sim.at(10.0, lambda: sim.host(1).crash())
        sim.run_until(200.0)
        assert leaders_agree(elections.values())
