"""Tests for the star (leader-centric) protocol on Follower Selection."""

import pytest

from repro.leadercentric import build_star_system
from repro.util.errors import ConfigurationError
from repro.xpaxos import BankLedger


class TestNormalCase:
    def test_fault_free_completes(self):
        system = build_star_system(n=7, f=2, clients=2, seed=7)
        system.run(400.0)
        assert system.total_completed() == 40
        assert system.histories_consistent()
        assert system.current_config() == (1, (1, 2, 3, 4, 5))

    def test_no_follower_follower_traffic(self):
        # The defining property: star-protocol messages always have the
        # leader as one endpoint — followers never address each other.
        from repro.leadercentric.replica import STAR_KINDS

        system = build_star_system(n=7, f=2, clients=1, seed=7)
        system.sim.network.trace(set(STAR_KINDS))
        system.run(300.0)
        leader = system.current_config()[0]
        for event in system.sim.log.events(kind="net.send"):
            src, dst = event.process, event.payload["dst"]
            assert leader in (src, dst), f"follower-follower message {src}->{dst}"

    def test_message_cost_is_linear(self):
        system = build_star_system(n=7, f=2, clients=1, seed=7)
        system.run(300.0)
        # 3 (q - 1) per request: PROPOSE + ACK + DECIDE on each spoke.
        assert system.star_messages() / 20 == 3 * (system.replicas[1].q - 1)

    def test_rejects_n_not_above_3f(self):
        with pytest.raises(ConfigurationError):
            build_star_system(n=6, f=2)

    def test_pluggable_state_machine(self):
        ops = [("open", "a"), ("deposit", "a", 10), ("balance", "a")]
        system = build_star_system(n=7, f=2, clients=1, seed=7, client_ops=[ops])
        for replica in system.replicas.values():
            replica.kv = BankLedger()
        system.run(300.0)
        client = list(system.clients.values())[0]
        assert [entry[2] for entry in client.completed] == [True, 10, 10]


class TestReconfiguration:
    def test_leader_crash_single_reconfiguration(self):
        system = build_star_system(n=7, f=2, clients=1, seed=9)
        system.adversary.crash(1, at=30.0)
        system.run(900.0)
        assert system.total_completed() == 20
        assert system.histories_consistent()
        leader, members = system.current_config()
        assert leader != 1
        assert max(r.reconfigurations for r in system.correct_replicas()) == 1

    def test_follower_crash_also_handled(self):
        system = build_star_system(n=7, f=2, clients=1, seed=11)
        system.adversary.crash(3, at=30.0)
        system.run(900.0)
        assert system.total_completed() == 20
        leader, members = system.current_config()
        assert 3 not in members

    def test_leader_link_omission_moves_leader(self):
        # The leader mutes its DECIDEs to one follower: that single bad
        # link is detected (follower's DECIDE expectation) and the leader
        # changes — the per-link story on the star topology.
        system = build_star_system(n=7, f=2, clients=1, seed=13)
        system.adversary.omit_links(1, dsts={3}, kinds={"st.decide"}, start=20.0)
        system.run(1200.0)
        assert system.total_completed() == 20
        leader, _ = system.current_config()
        assert leader != 1

    def test_new_replica_catches_up_via_adopt(self):
        system = build_star_system(n=7, f=2, clients=1, seed=9)
        system.adversary.crash(1, at=30.0)
        system.run(900.0)
        # p6 joined the configuration after the crash and must hold the
        # full history.
        leader, members = system.current_config()
        joiner = [m for m in members if m >= 6]
        for pid in joiner:
            assert len(system.replicas[pid].executed) == 20
