"""Byzantine-input tests for the star protocol."""

from repro.leadercentric import build_star_system
from repro.leadercentric.replica import (
    KIND_STAR_DECIDE,
    KIND_STAR_PROPOSE,
    DecidePayload,
    ProposePayload,
)
from repro.xpaxos.messages import ClientRequest


def started_system(seed=7):
    system = build_star_system(n=7, f=2, clients=1, seed=seed, client_ops=[[]])
    system.sim.start()
    return system


class TestByzantineInputs:
    def test_forged_request_in_propose_detected(self):
        # The leader proposes an operation no client ever signed: every
        # follower detects it permanently.
        system = started_system()
        leader = system.sim.host(1)
        forged = leader.authenticator.sign(  # signer != claimed client
            ClientRequest(client=8, sequence=0, op=("put", "stolen", 1))
        )
        propose = leader.authenticator.sign(
            ProposePayload(config=(1, (1, 2, 3, 4, 5)), slot=0, signed_request=forged)
        )
        leader.send(2, KIND_STAR_PROPOSE, propose)
        system.run(50.0)
        assert 1 in system.sim.host(2).fd.suspected
        assert len(system.replicas[2].executed) == 0

    def test_propose_from_non_leader_ignored(self):
        system = started_system()
        impostor = system.sim.host(3)
        client = system.sim.host(8)
        request = client.authenticator.sign(
            ClientRequest(client=8, sequence=0, op=("put", "k", 1))
        )
        propose = impostor.authenticator.sign(
            ProposePayload(config=(1, (1, 2, 3, 4, 5)), slot=0, signed_request=request)
        )
        impostor.send(2, KIND_STAR_PROPOSE, propose)
        system.run(50.0)
        assert len(system.replicas[2].executed) == 0
        assert 3 not in system.sim.host(2).fd.suspected  # silently dropped

    def test_stale_config_decide_ignored(self):
        system = started_system()
        leader = system.sim.host(1)
        client = system.sim.host(8)
        request = client.authenticator.sign(
            ClientRequest(client=8, sequence=0, op=("put", "k", 1))
        )
        stale = leader.authenticator.sign(
            DecidePayload(config=(1, (1, 2, 3, 4, 6)), slot=0, signed_request=request)
        )
        leader.send(2, KIND_STAR_DECIDE, stale)
        system.run(50.0)
        assert len(system.replicas[2].executed) == 0

    def test_direct_decide_executes_without_propose(self):
        # A DECIDE from the current leader for the current config is
        # authoritative (the leader vouches it gathered all ACKs); a
        # follower that missed the PROPOSE still executes consistently.
        system = started_system()
        leader = system.sim.host(1)
        client = system.sim.host(8)
        request = client.authenticator.sign(
            ClientRequest(client=8, sequence=0, op=("put", "k", 1))
        )
        decide = leader.authenticator.sign(
            DecidePayload(config=(1, (1, 2, 3, 4, 5)), slot=0, signed_request=request)
        )
        leader.send(2, KIND_STAR_DECIDE, decide)
        system.run(50.0)
        assert len(system.replicas[2].executed) == 1
