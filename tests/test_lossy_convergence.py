"""QS convergence on lossy channels (the tentpole acceptance scenarios).

The paper's Lemma 1 (eventual matrix consistency) assumes reliable
channels: every signed UPDATE eventually reaches everyone, directly or by
gossip forwarding.  Under a chaotic network that drops, duplicates, and
reorders, raw gossip loses rows for good.  These tests run the E17-style
crash scenario on chaotic channels with both countermeasures armed —
:class:`ReliableTransport` under UPDATE/FOLLOWERS, periodic anti-entropy
digest sync in the QS module — and require the *final* protocol state
(quorum and epoch at every correct process) to equal a reliable-channel
reference run of the same seed and failure-detector configuration.

The failure-detector timeout is deliberately generous (``base_timeout=24``
against a heartbeat period of 2): heartbeats ride the raw lossy channel,
so a tight timeout would raise *false* correct-correct suspicions under
heavy loss — and the matrix remembers cancelled suspicions by design, so
a single false one would legitimately change the selected quorum.  That
is a failure-detector accuracy question, not a convergence question; the
timeout isolates the property under test.  Runs are deterministic per
seed, so these are exact regressions, not flaky statistical checks.
"""

import pytest

from repro.core.spec import agreement_holds
from repro.sim.network import ChaosConfig
from tests.conftest import build_qs_world

HORIZON = 200.0
BASE_TIMEOUT = 24.0

CHAOS_GRIDS = {
    "light": ChaosConfig(drop=0.1, duplicate=0.1, reorder=0.2),
    "heavy": ChaosConfig(drop=0.3, duplicate=0.1, reorder=0.2),
}


def run_crash_scenario(n, f, seed, chaos=None, reliable=False, anti_entropy_period=None):
    """E17 shape: p1 crashes at t=10; run to the horizon; report final state."""
    sim, modules = build_qs_world(
        n,
        f,
        seed=seed,
        base_timeout=BASE_TIMEOUT,
        chaos=chaos,
        reliable=reliable,
        anti_entropy_period=anti_entropy_period,
    )
    sim.at(10.0, lambda: sim.host(1).crash())
    sim.run_until(HORIZON)
    correct = {pid: modules[pid] for pid in sim.pids if pid != 1}
    return sim, correct


@pytest.mark.chaos
class TestLossyConvergence:
    @pytest.mark.parametrize("n,f", [(5, 2), (10, 3)])
    @pytest.mark.parametrize("grid", sorted(CHAOS_GRIDS))
    @pytest.mark.parametrize("seed", [3, 11])
    def test_final_state_matches_reliable_reference(self, n, f, grid, seed):
        _, reference = run_crash_scenario(n, f, seed)
        ref_quorums = {pid: m.qlast for pid, m in reference.items()}
        ref_epochs = {pid: m.epoch for pid, m in reference.items()}

        _, lossy = run_crash_scenario(
            n, f, seed,
            chaos=CHAOS_GRIDS[grid],
            reliable=True,
            anti_entropy_period=5.0,
        )
        # Same final quorum and epoch at every correct process as the
        # reliable run — loss/duplication/reordering delayed, but did not
        # change, what the protocol decided.
        assert {pid: m.qlast for pid, m in lossy.items()} == ref_quorums
        assert {pid: m.epoch for pid, m in lossy.items()} == ref_epochs
        assert agreement_holds(list(lossy.values()))
        # The crashed process really was selected around.
        assert all(1 not in m.qlast for m in lossy.values())

    @pytest.mark.parametrize("seed", [3, 11])
    def test_heavy_loss_without_countermeasures_can_diverge_midrun(self, seed):
        # Power check for the test above: the countermeasures are doing
        # real work.  With raw gossip on the same heavy-loss network, at
        # least one correct process misses matrix state somewhere in the
        # run (matrices differ at the horizon or retransmission/AE traffic
        # in the armed run is non-zero — the latter always holds).
        _, lossy = run_crash_scenario(
            10, 3, seed, chaos=CHAOS_GRIDS["heavy"], reliable=True,
            anti_entropy_period=5.0,
        )
        transports = {
            pid: next(
                mod for mod in m.host._modules if type(mod).__name__ == "ReliableTransport"
            )
            for pid, m in lossy.items()
        }
        total_retransmissions = sum(t.retransmissions for t in transports.values())
        total_ae = sum(m.ae_digests_sent for m in lossy.values())
        assert total_retransmissions > 0
        assert total_ae > 0

    def test_anti_entropy_alone_converges_under_heavy_loss(self):
        # AE without retransmission must still reach the reference state:
        # digests ride the lossy channel but are re-sent every period, so
        # convergence only needs one probe/repair round trip to survive.
        n, f, seed = 5, 2, 3
        _, reference = run_crash_scenario(n, f, seed)
        _, lossy = run_crash_scenario(
            n, f, seed, chaos=CHAOS_GRIDS["heavy"], reliable=False,
            anti_entropy_period=5.0,
        )
        assert {pid: m.qlast for pid, m in lossy.items()} == {
            pid: m.qlast for pid, m in reference.items()
        }


class TestAntiEntropyRepair:
    """The digest/cert exchange demonstrably repairs a diverged replica."""

    def test_missed_update_is_repaired_by_probe(self):
        # Gossip forwarding OFF, so the only repair channel is AE: a row
        # signed by p3 ("I suspect p1") reaches p1 only — the suspect edge
        # (3, 1) evicts p1 from the lex-first quorum at p1 but not at p2.
        # p2 must learn it when its round-robin digest probe hits p1, whose
        # reply carries the retained signed cert.
        from repro.core.messages import KIND_UPDATE, UpdatePayload
        from repro.core.quorum_selection import QuorumSelectionModule
        from repro.sim.runtime import Simulation, SimulationConfig

        sim = Simulation(SimulationConfig(n=4, seed=1))
        modules = {}
        for pid in (1, 2):
            host = sim.host(pid)
            modules[pid] = host.add_module(
                QuorumSelectionModule(
                    host, n=4, f=1, use_fd=False, forward_updates=False,
                    anti_entropy_period=5.0,
                )
            )
        sim.start()
        signer = sim.host(3)
        row = (0, 1, 1, 0, 0)  # p3 claims to suspect p1 and p2 in epoch 1
        signed = signer.authenticator.sign(UpdatePayload(row))
        sim.at(1.0, lambda: signer.send(1, KIND_UPDATE, signed))
        sim.run_until(4.0)
        # q = 3: edges (3,1) and (3,2) leave {1, 2, 4} as the lex-first
        # independent set at p1; p2 still holds the default {1, 2, 3}.
        assert modules[1].qlast == frozenset({1, 2, 4})
        assert modules[2].qlast == frozenset({1, 2, 3})  # diverged
        sim.run_until(60.0)
        assert modules[2].qlast == frozenset({1, 2, 4})  # AE repaired it
        assert modules[2].matrix.get(3, 1) == 1
        assert modules[2].ae_rows_applied >= 1
        assert modules[1].ae_rows_sent >= 1
