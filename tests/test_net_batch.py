"""E27 batch layer: flush policy, single-HMAC envelopes, omission drops.

Three layers of coverage:

- **Policy/buffer units** — the flush triggers (frame-count, byte, and
  time budgets) on the pure :class:`BatchBuffer`, with no sockets.
- **Envelope crypto** — one HMAC-SHA256 over the whole batch: tampering
  with *any* member byte kills every frame in the envelope, and the
  stream decoder counts the rejection instead of delivering.
- **End-to-end links** (marked ``net``) — real loopback TCP between two
  :class:`PeerManager`\\ s: batched V2 sends deliver everything, mixed
  V1/V2 managers interoperate by settling on V1, a wrong link key drops
  whole batches, and queue overflow still degrades into counted
  omission faults, exactly the failure mode the protocol tolerates.
"""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.crypto.authenticator import Authenticator
from repro.crypto.keys import KeyRegistry
from repro.core.messages import KIND_UPDATE, UpdatePayload
from repro.net.batch import (
    MEMBER_OVERHEAD,
    BatchAuthenticator,
    BatchBuffer,
    BatchPolicy,
    WireStats,
)
from repro.net.peer import PeerManager, ReconnectPolicy
from repro.net.wire import (
    WIRE_V1,
    WIRE_V2,
    BatchAuthError,
    FrameDecoder,
    WireError,
    encode_batch,
    encode_frame_body,
    split_batch_body,
)

_HDR_BATCH_SIZE = 6  # magic, flags, src:u16, count:u16
_LEN_SIZE = 4


def bodies_v2(count: int, src: int = 1):
    return [
        encode_frame_body("qs.update", UpdatePayload(row=(i, 0, 1)), src, version=WIRE_V2)
        for i in range(count)
    ]


# --------------------------------------------------------------- policy units


class TestBatchPolicy:
    def test_defaults_are_valid(self):
        policy = BatchPolicy()
        assert policy.max_frames >= 1 and policy.max_bytes >= 1
        assert policy.max_delay >= 0

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_frames": 0}, {"max_bytes": 0}, {"max_delay": -0.1}],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BatchPolicy(**kwargs)

    def test_disabled_is_write_per_frame(self):
        policy = BatchPolicy.disabled()
        assert (policy.max_frames, policy.max_bytes, policy.max_delay) == (1, 1, 0.0)

    def test_as_dict_round_trips(self):
        policy = BatchPolicy(max_frames=7, max_bytes=512, max_delay=0.01)
        assert BatchPolicy(**policy.as_dict()) == policy


class TestBatchBufferTriggers:
    def test_flush_on_max_frames(self):
        buffer = BatchBuffer(BatchPolicy(max_frames=3, max_bytes=1 << 20, max_delay=9.0))
        for i in range(2):
            buffer.add(b"x" * 10, now=float(i))
            assert not buffer.full()
        buffer.add(b"x" * 10, now=2.0)
        assert buffer.full()

    def test_flush_on_max_bytes(self):
        buffer = BatchBuffer(BatchPolicy(max_frames=1000, max_bytes=64, max_delay=9.0))
        buffer.add(b"x" * 30, now=0.0)
        assert not buffer.full()
        buffer.add(b"x" * (64 - 30 - 2 * MEMBER_OVERHEAD), now=0.0)
        assert buffer.full()  # member overhead counts toward the budget

    def test_flush_on_time_budget(self):
        buffer = BatchBuffer(BatchPolicy(max_frames=1000, max_bytes=1 << 20, max_delay=0.5))
        assert buffer.deadline() is None and not buffer.expired(now=100.0)
        buffer.add(b"x", now=10.0)
        assert buffer.deadline() == 10.5
        assert not buffer.expired(now=10.49)
        assert buffer.expired(now=10.5)  # clock of the *oldest* frame rules

    def test_drain_resets_everything(self):
        buffer = BatchBuffer(BatchPolicy())
        buffer.add(b"a", now=1.0)
        buffer.add(b"b", now=2.0)
        assert buffer.drain() == [b"a", b"b"]
        assert len(buffer) == 0 and buffer.nbytes == 0
        assert buffer.deadline() is None


class TestWireStats:
    def test_record_encode_bulk_counts_each_sample(self):
        stats = WireStats()
        stats.record_encode_bulk(0.008, 4)
        assert stats.encode_count == 4
        assert stats.encode_seconds_sum == pytest.approx(0.008)
        assert sum(stats.encode_bucket_counts) == 4  # all 4 at the mean

    def test_record_encode_bulk_ignores_empty_flush(self):
        stats = WireStats()
        stats.record_encode_bulk(0.5, 0)
        assert stats.encode_count == 0 and stats.encode_seconds_sum == 0.0

    def test_record_flush_feeds_batch_histogram(self):
        stats = WireStats()
        stats.record_flush(5)
        stats.record_flush(128)
        assert stats.batch_flushes == 2
        assert stats.batch_frames_sum == 133
        assert sum(stats.batch_bucket_counts) == 2


# ------------------------------------------------------------ envelope crypto


class TestBatchEnvelope:
    def test_round_trip_without_auth(self):
        members = bodies_v2(3)
        envelope = encode_batch(members, src=1)
        src, out = split_batch_body(envelope[_LEN_SIZE:])
        assert src == 1 and out == members

    def test_round_trip_with_mac(self):
        registry = KeyRegistry(3)
        members = bodies_v2(4, src=2)
        envelope = encode_batch(members, src=2, auth=BatchAuthenticator(registry, 2))
        src, out = split_batch_body(
            envelope[_LEN_SIZE:], auth=BatchAuthenticator(registry, 1)
        )
        assert src == 2 and out == members

    def test_any_tampered_member_rejects_the_whole_batch(self):
        registry = KeyRegistry(3)
        members = bodies_v2(3)
        envelope = bytes(
            encode_batch(members, src=1, auth=BatchAuthenticator(registry, 1))
        )[_LEN_SIZE:]
        verifier = BatchAuthenticator(registry, 2)
        # Flip one byte inside every member's byte range in turn; the
        # single MAC covers all of them, so each flip kills the batch.
        pos = _HDR_BATCH_SIZE
        for member in members:
            member_start = pos + _LEN_SIZE
            tampered = bytearray(envelope)
            tampered[member_start + len(member) // 2] ^= 0x01
            with pytest.raises(BatchAuthError):
                split_batch_body(bytes(tampered), auth=verifier)
            pos = member_start + len(member)

    def test_missing_mac_rejected_when_auth_required(self):
        registry = KeyRegistry(3)
        envelope = encode_batch(bodies_v2(2), src=1)  # no MAC
        with pytest.raises(BatchAuthError):
            split_batch_body(envelope[_LEN_SIZE:], auth=BatchAuthenticator(registry, 2))

    def test_unknown_sender_key_rejected(self):
        registry = KeyRegistry(3)
        envelope = encode_batch(
            bodies_v2(2, src=3), src=3, auth=BatchAuthenticator(registry, 3)
        )
        # The receiver's registry does not know pid 3: no key, no trust.
        with pytest.raises(BatchAuthError):
            split_batch_body(
                envelope[_LEN_SIZE:], auth=BatchAuthenticator(KeyRegistry(2), 1)
            )

    def test_empty_and_garbage_envelopes_are_typed_errors(self):
        with pytest.raises(WireError):
            encode_batch([], src=1)
        with pytest.raises(WireError):
            split_batch_body(b"\x03\x00")  # truncated header
        with pytest.raises(WireError):
            split_batch_body(b"\x02" + b"\x00" * 8)  # not a batch magic

    def test_decoder_counts_rejected_batch_and_delivers_nothing(self):
        registry = KeyRegistry(3)
        members = bodies_v2(3)
        envelope = bytearray(
            encode_batch(members, src=1, auth=BatchAuthenticator(registry, 1))
        )
        envelope[-1] ^= 0xFF  # corrupt the MAC itself
        decoder = FrameDecoder(
            batch_auth_provider=lambda: BatchAuthenticator(registry, 2)
        )
        assert decoder.feed(bytes(envelope)) == []
        assert decoder.batches_rejected == 1 and decoder.batches_decoded == 0

        # The untampered envelope delivers every member through the same
        # decoder instance.
        frames = decoder.feed(encode_batch(members, src=1, auth=BatchAuthenticator(registry, 1)))
        assert len(frames) == 3 and decoder.batches_decoded == 1

    def test_v1_only_decoder_counts_batch_as_malformed(self):
        decoder = FrameDecoder(accept_versions=(WIRE_V1,))
        assert decoder.feed(encode_batch(bodies_v2(2), src=1)) == []
        assert decoder.malformed == 1


# ------------------------------------------------------------ live loopback


async def _linked_pair(
    sender_version=None,
    receiver_version=None,
    sender_auth=None,
    receiver_auth=None,
    expect: int = 0,
    **sender_kwargs,
):
    """Two managers, a ready event counting ``expect`` deliveries."""
    received = []
    done = asyncio.Event()

    def ingress(kind, payload, src):
        received.append((kind, payload, src))
        if len(received) >= expect:
            done.set()

    sender = PeerManager(
        1, rng_seed=1, wire_version=sender_version, batch_auth=sender_auth,
        **sender_kwargs,
    )
    receiver = PeerManager(
        2, rng_seed=2, ingress=ingress, wire_version=receiver_version,
        batch_auth=receiver_auth,
    )
    addr = await receiver.start_server()
    sender.addresses = {2: addr}
    return sender, receiver, received, done


@pytest.mark.net
def test_batched_v2_send_delivers_everything():
    async def scenario():
        registry = KeyRegistry(2)
        sender, receiver, received, done = await _linked_pair(
            sender_version=WIRE_V2, receiver_version=WIRE_V2,
            sender_auth=BatchAuthenticator(registry, 1),
            receiver_auth=BatchAuthenticator(registry, 2),
            expect=200,
        )
        await sender.warm_up(timeout=5.0)
        message = Authenticator(registry, 1).sign(UpdatePayload(row=(0, 1)))
        for _ in range(200):
            assert sender.send(2, KIND_UPDATE, message)
        await asyncio.wait_for(done.wait(), timeout=10.0)
        stats = (sender.stats, receiver.stats, sender.connection(2).negotiated_version)
        await sender.close()
        await receiver.close()
        return received, stats

    received, (sent, recv, version) = asyncio.run(scenario())
    assert len(received) == 200
    assert version == WIRE_V2
    assert sent.batches_sent >= 1  # coalescing actually happened
    assert recv.batches_received >= 1
    assert recv.batches_rejected == 0 and recv.frames_malformed == 0


@pytest.mark.net
def test_small_sends_flush_on_time_budget():
    """Frames far below every size budget must still leave within max_delay."""

    async def scenario():
        sender, receiver, received, done = await _linked_pair(
            sender_version=WIRE_V2, receiver_version=WIRE_V2, expect=3,
        )
        await sender.warm_up(timeout=5.0)
        for i in range(3):
            sender.send(2, "qs.update", (i,))
        await asyncio.wait_for(done.wait(), timeout=2.0)  # << any size budget
        await sender.close()
        await receiver.close()
        return received

    assert len(asyncio.run(scenario())) == 3


@pytest.mark.net
@pytest.mark.parametrize(
    "sender_version,receiver_version",
    [(WIRE_V2, WIRE_V1), (WIRE_V1, WIRE_V2)],
)
def test_mixed_version_managers_settle_on_v1(sender_version, receiver_version):
    async def scenario():
        sender, receiver, received, done = await _linked_pair(
            sender_version=sender_version, receiver_version=receiver_version,
            expect=50,
        )
        await sender.warm_up(timeout=5.0)
        for i in range(50):
            assert sender.send(2, "qs.update", (i, i))
        await asyncio.wait_for(done.wait(), timeout=10.0)
        negotiated = sender.connection(2).negotiated_version
        stats = receiver.stats
        await sender.close()
        await receiver.close()
        return received, negotiated, stats

    received, negotiated, stats = asyncio.run(scenario())
    assert [payload for _, payload, _ in received] == [(i, i) for i in range(50)]
    assert negotiated == WIRE_V1  # the pair's highest common codec
    assert stats.frames_malformed == 0
    assert stats.batches_received == 0  # V1 links never mint envelopes


@pytest.mark.net
def test_wrong_link_key_drops_whole_batches_as_omissions():
    async def scenario():
        registry = KeyRegistry(2)
        sender, receiver, received, done = await _linked_pair(
            sender_version=WIRE_V2, receiver_version=WIRE_V2,
            # Sender MACs with a key the receiver's registry disagrees on.
            sender_auth=BatchAuthenticator(KeyRegistry(2, system_nonce="evil"), 1),
            receiver_auth=BatchAuthenticator(registry, 2),
            expect=1,
        )
        await sender.warm_up(timeout=5.0)
        # All enqueued before the writer task runs: one envelope.
        for i in range(10):
            sender.send(2, "qs.update", (i,))
        await asyncio.sleep(0.5)
        stats = receiver.stats
        await sender.close()
        await receiver.close()
        return received, stats

    received, stats = asyncio.run(scenario())
    assert received == []  # the whole batch died with its MAC
    assert stats.batches_rejected >= 1
    assert stats.frames_received == 0


@pytest.mark.net
def test_queue_overflow_drops_count_as_omission_faults():
    async def scenario():
        manager = PeerManager(
            1,
            addresses={2: ("127.0.0.1", 1)},  # nothing listens here
            queue_capacity=3,
            policy=ReconnectPolicy(initial_delay=0.05, max_delay=0.1),
            rng_seed=0,
        )
        accepted = [manager.send(2, "qs.update", (i,)) for i in range(8)]
        await asyncio.sleep(0.05)
        await manager.close()
        return accepted, manager.stats

    accepted, stats = asyncio.run(scenario())
    assert accepted.count(True) == 3
    assert accepted.count(False) == 5
    assert stats.frames_dropped_backpressure == 5  # omissions, counted
