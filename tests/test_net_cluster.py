"""Live loopback clusters: one OS process per replica, real kills.

Marked ``net``: these tests launch subprocess meshes over ephemeral
loopback ports (collision-safe for parallel CI) and take tens of
seconds.  Select them alone with ``-m net``.
"""

from __future__ import annotations

import pytest

from repro.net.cluster import ClusterConfig, parse_schedule, run_cluster
from repro.net.parity import (
    ParitySchedule,
    parity_problems,
    run_net_schedule,
    run_sim_schedule,
    thm3_bound,
)
from repro.util.errors import ConfigurationError

pytestmark = pytest.mark.net


def test_process_kill_restabilizes(tmp_path):
    """SIGKILL one replica; survivors re-stabilize on an active quorum."""
    config = ClusterConfig(
        n=5,
        f=1,
        duration=8.0,
        kills=((2, 2.0),),
        kill_mode="process",
        run_dir=tmp_path / "run",
    )
    result = run_cluster(config)

    assert result.nodes[2].sigkilled
    assert result.correct_pids() == [1, 3, 4, 5]
    assert result.agreement(), result.summary()
    assert result.active_quorum(), result.summary()
    assert 2 not in (result.final_quorum() or set())
    assert result.max_changes_per_epoch() <= thm3_bound(config.f)
    # The run directory captured the structured streams.
    assert (tmp_path / "run" / "cluster.json").exists()
    assert (tmp_path / "run" / "node_1.jsonl").exists()


def test_sim_net_parity_with_kills_and_recovery(tmp_path):
    """The issue's acceptance scenario, checked against the simulator.

    n=7, f=2: two kills and one recovery, scripted in heartbeat-period
    units and executed by both runtimes.  Both must agree internally,
    respect Theorem 3's f(f+1) bound, exclude the still-crashed process,
    and land on the *same* final quorum.
    """
    schedule = ParitySchedule(
        n=7,
        f=2,
        kills=((1, 6.0), (2, 10.0)),
        recovers=((1, 20.0),),
        duration_periods=40.0,
    )
    sim = run_sim_schedule(schedule)
    net, result = run_net_schedule(schedule, run_dir=tmp_path / "net")

    problems = parity_problems(sim, net, schedule)
    assert problems == [], "\n".join(problems)

    # The cluster additionally survived 2 kills + 1 recovery on an
    # active quorum (no crashed member), with the recovered replica
    # back among the correct ones.
    assert result.active_quorum(), result.summary()
    assert 1 in result.correct_pids()
    assert result.final_quorum() == frozenset({3, 4, 5, 6, 7})


def test_mixed_wire_version_cluster_stabilizes_same_quorum(tmp_path):
    """E27 interop acceptance: V1 and V2 nodes in one cluster.

    Nodes 1 and 4 speak only WIRE_V1 while the rest run WIRE_V2; every
    V2 dialer downgrades per-link via the hello/ack handshake.  The
    mixed cluster must stabilize to the same final quorum the simulator
    selects for the same schedule — codec per link is invisible to the
    protocol.
    """
    schedule = ParitySchedule(
        n=5, f=1, kills=((2, 5.0),), duration_periods=30.0
    )
    sim = run_sim_schedule(schedule)
    net, result = run_net_schedule(
        schedule,
        run_dir=tmp_path / "net",
        wire_version=2,
        wire_versions={1: 1, 4: 1},
    )

    problems = parity_problems(sim, net, schedule)
    assert problems == [], "\n".join(problems)
    assert result.agreement(), result.summary()
    assert 2 not in (result.final_quorum() or set())


class TestConfigValidation:
    def test_recovery_requires_host_mode(self):
        config = ClusterConfig(
            n=5, f=1, kills=((1, 1.0),), recovers=((1, 3.0),), kill_mode="process"
        )
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_schedule_must_fit_run_window(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(n=5, f=1, duration=5.0, kills=((1, 5.0),)).validate()

    def test_schedule_pid_must_exist(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(n=5, f=1, kills=((9, 1.0),)).validate()

    def test_quorum_must_outnumber_faults(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(n=4, f=2).validate()

    def test_parse_schedule(self):
        assert parse_schedule(["1@2.5", "3@0"], "kill") == ((1, 2.5), (3, 0.0))
        with pytest.raises(ConfigurationError):
            parse_schedule(["nope"], "kill")
        with pytest.raises(ConfigurationError):
            parse_schedule(["1@x"], "kill")
