"""NetHost over real loopback sockets, in-process (one event loop).

These tests run several hosts inside a single asyncio loop — real TCP,
real frames, no subprocesses — so the tier-1 suite exercises the live
runtime's host semantics (delivery, ingress authentication, crash and
recovery, backpressure) in a couple of seconds.  Whole-cluster behaviour
with one OS process per replica lives in ``test_net_cluster.py``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.messages import KIND_UPDATE, UpdatePayload
from repro.crypto.authenticator import Authenticator, SignedMessage
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import Signature
from repro.net.host import NetHost
from repro.net.peer import PeerConnection, PeerManager, PeerStats, ReconnectPolicy
from repro.net.timers import NetTimerService
from repro.sim.worlds import attach_qs_stack


async def start_mesh(n, f=1, heartbeat=0.1, timeout=0.6, start=True):
    """n live hosts on one loop, fully meshed, running the QS stack."""
    loop = asyncio.get_running_loop()
    managers, addrs = {}, {}
    for pid in range(1, n + 1):
        managers[pid] = PeerManager(pid, rng_seed=pid)
        addrs[pid] = await managers[pid].start_server()
    hosts, modules = {}, {}
    for pid in range(1, n + 1):
        managers[pid].addresses = {p: a for p, a in addrs.items() if p != pid}
        host = NetHost(
            pid,
            managers[pid],
            Authenticator(KeyRegistry(n), pid),
            NetTimerService(loop),
        )
        hosts[pid] = host
        modules[pid] = attach_qs_stack(
            host, n, f, heartbeat_period=heartbeat, base_timeout=timeout
        )
    for pid in range(1, n + 1):
        await managers[pid].warm_up(timeout=5.0)
    if start:
        for host in hosts.values():
            host.start()
    return hosts, modules, managers


async def close_mesh(managers):
    for manager in managers.values():
        await manager.close()


def test_both_runtimes_satisfy_the_host_api_contract():
    from repro.hostapi import missing_host_api, require_host_api
    from repro.sim.runtime import Simulation, SimulationConfig

    sim = Simulation(SimulationConfig(n=3, seed=1))
    assert missing_host_api(sim.host(1)) == ()

    async def scenario():
        hosts, _, managers = await start_mesh(3, start=False)
        checked = require_host_api(hosts[1]) is hosts[1]
        await close_mesh(managers)
        return checked

    assert asyncio.run(scenario())

    class NotAHost:
        pid = 1

    with pytest.raises(TypeError, match="missing"):
        require_host_api(NotAHost())


def test_signed_frame_delivered_and_verified():
    async def scenario():
        hosts, _, managers = await start_mesh(3, start=False)
        received = []
        hosts[2].subscribe(KIND_UPDATE, lambda k, p, s: received.append((p, s)))
        message = hosts[1].authenticator.sign(UpdatePayload(row=(0, 0, 1)))
        hosts[1].send(2, KIND_UPDATE, message)
        await asyncio.sleep(0.3)
        await close_mesh(managers)
        return received, managers[2].stats

    received, stats = asyncio.run(scenario())
    assert len(received) == 1
    payload, src = received[0]
    assert payload.payload == UpdatePayload(row=(0, 0, 1))
    assert src == 1
    assert stats.frames_received == 1
    assert stats.frames_auth_rejected == 0


def test_forged_signature_dropped_at_ingress():
    async def scenario():
        hosts, _, managers = await start_mesh(3, start=False)
        received = []
        hosts[2].subscribe(KIND_UPDATE, lambda k, p, s: received.append(p))
        forged = SignedMessage(
            UpdatePayload(row=(0, 0, 1)), Signature(signer=1, tag=b"not a mac")
        )
        hosts[1].send(2, KIND_UPDATE, forged)
        await asyncio.sleep(0.3)
        await close_mesh(managers)
        return received, managers[2].stats, hosts[2].log

    received, stats, log = asyncio.run(scenario())
    assert received == []
    assert stats.frames_auth_rejected == 1
    assert log.count("net.authfail") == 1


def test_broadcast_self_delivery_is_deferred():
    async def scenario():
        hosts, _, managers = await start_mesh(3, start=False)
        received = []
        hosts[1].subscribe("probe", lambda k, p, s: received.append((p, s)))
        hosts[1].broadcast([1, 2], "probe", "x")
        synchronous = list(received)  # call_soon: nothing delivered inline
        await asyncio.sleep(0.05)
        await close_mesh(managers)
        return synchronous, received

    synchronous, received = asyncio.run(scenario())
    assert synchronous == []
    assert received == [("x", 1)]


def test_crashed_host_ignores_ingress_and_drops_timers():
    async def scenario():
        hosts, _, managers = await start_mesh(3, start=False)
        fired = []
        hosts[2].set_timer(0.05, lambda: fired.append("timer"))
        hosts[2].crash()
        hosts[1].send(2, "probe", "x")
        await asyncio.sleep(0.3)
        ignored = hosts[2].frames_ignored_crashed
        assert hosts[2].send(1, "probe", "y") is None  # silenced
        sent_while_down = managers[2].stats.frames_sent
        hosts[2].recover()
        await close_mesh(managers)
        return fired, ignored, sent_while_down, hosts[2].running

    fired, ignored, sent_while_down, running = asyncio.run(scenario())
    assert fired == []
    assert ignored >= 1
    assert sent_while_down == 0
    assert running


def test_recover_restarts_failure_detector_and_modules():
    async def scenario():
        hosts, modules, managers = await start_mesh(3, heartbeat=0.05, timeout=5.0)
        hosts[1].crash()
        await asyncio.sleep(0.1)
        hosts[1].recover()
        sent_before = managers[1].stats.frames_sent
        await asyncio.sleep(0.3)
        sent_after = managers[1].stats.frames_sent
        await close_mesh(managers)
        return sent_before, sent_after, modules

    sent_before, sent_after, _ = asyncio.run(scenario())
    assert sent_after > sent_before  # heartbeats resumed after recovery


def test_cancelled_timer_does_not_fire():
    async def scenario():
        hosts, _, managers = await start_mesh(3, start=False)
        fired = []
        handle = hosts[1].set_timer(0.02, lambda: fired.append(1))
        handle.cancel()
        await asyncio.sleep(0.08)
        await close_mesh(managers)
        return fired

    assert asyncio.run(scenario()) == []


def test_backpressure_drops_and_counts():
    async def scenario():
        manager = PeerManager(
            1,
            addresses={2: ("127.0.0.1", 1)},  # nothing listens here
            queue_capacity=2,
            policy=ReconnectPolicy(initial_delay=0.05, max_delay=0.1),
            rng_seed=0,
        )
        conn = manager.connection(2)
        accepted = [conn.enqueue("qs.update", i) for i in range(4)]
        await asyncio.sleep(0.05)
        await manager.close()
        return accepted, conn.stats

    accepted, stats = asyncio.run(scenario())
    assert accepted.count(False) == 2
    assert stats.frames_dropped_backpressure == 2


def test_quorum_converges_after_live_crash():
    """Four live hosts; p1 crashes; survivors agree on quorum {2,3,4}."""

    async def scenario():
        hosts, modules, managers = await start_mesh(4, f=1, heartbeat=0.1, timeout=0.5)
        await asyncio.sleep(0.4)
        hosts[1].crash()
        await asyncio.sleep(2.5)
        quorums = {pid: modules[pid].qlast for pid in (2, 3, 4)}
        bounds = {pid: modules[pid].max_quorums_in_any_epoch() for pid in (2, 3, 4)}
        await close_mesh(managers)
        return quorums, bounds

    quorums, bounds = asyncio.run(scenario())
    assert set(quorums.values()) == {frozenset({2, 3, 4})}
    assert all(count <= 1 * 2 for count in bounds.values())  # Thm 3: f(f+1)
