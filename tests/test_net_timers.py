"""NetTimerService: scheduler-compatible semantics on a real event loop."""

from __future__ import annotations

import asyncio

import pytest

from repro.net.timers import NetTimerService
from repro.util.errors import SimulationError


def run(coro):
    return asyncio.run(coro)


def test_one_shot_fires_once():
    async def scenario():
        timers = NetTimerService(asyncio.get_running_loop())
        fired = []
        timers.schedule(0.01, lambda: fired.append(timers.now))
        await asyncio.sleep(0.05)
        return timers, fired

    timers, fired = run(scenario())
    assert len(fired) == 1
    assert timers.timers_fired == 1


def test_cancel_before_fire_is_honoured_lazily():
    async def scenario():
        timers = NetTimerService(asyncio.get_running_loop())
        fired = []
        event = timers.schedule(0.01, lambda: fired.append(1))
        event.cancelled = True
        await asyncio.sleep(0.05)
        return timers, fired

    timers, fired = run(scenario())
    assert fired == []
    assert timers.timers_cancelled == 1
    assert timers.timers_fired == 0


def test_negative_delay_rejected():
    async def scenario():
        timers = NetTimerService(asyncio.get_running_loop())
        with pytest.raises(SimulationError):
            timers.schedule(-0.1, lambda: None)

    run(scenario())


def test_now_advances_from_zero():
    async def scenario():
        timers = NetTimerService(asyncio.get_running_loop())
        start = timers.now
        await asyncio.sleep(0.02)
        return start, timers.now

    start, later = run(scenario())
    assert 0 <= start < 0.01
    assert later > start


def test_schedule_at_absolute_service_time():
    async def scenario():
        timers = NetTimerService(asyncio.get_running_loop())
        fired = []
        timers.schedule_at(0.02, lambda: fired.append(timers.now))
        await asyncio.sleep(0.06)
        return fired

    fired = run(scenario())
    assert len(fired) == 1
    assert fired[0] >= 0.015


def test_repeating_fires_until_cancelled_from_inside():
    async def scenario():
        timers = NetTimerService(asyncio.get_running_loop())
        ticks = []

        def tick():
            ticks.append(timers.now)
            if len(ticks) == 3:
                handle.cancel()  # cancel from inside the action

        handle = timers.schedule_every(0.01, tick)
        await asyncio.sleep(0.1)
        return ticks

    assert len(run(scenario())) == 3


def test_repeating_rejects_nonpositive_period():
    async def scenario():
        timers = NetTimerService(asyncio.get_running_loop())
        with pytest.raises(SimulationError):
            timers.schedule_every(0.0, lambda: None)

    run(scenario())
