"""Wire codec: tagged-value round-trips and defensive frame parsing."""

from __future__ import annotations

import json
import struct

import pytest

from repro.core.messages import (
    FollowersPayload,
    MatrixDigestPayload,
    RowCertsPayload,
    UpdatePayload,
)
from repro.crypto.authenticator import Authenticator
from repro.crypto.keys import KeyRegistry
from repro.net.wire import (
    MAX_DEPTH,
    MAX_FRAME_BYTES,
    WIRE_V1,
    WIRE_V2,
    FrameDecoder,
    WireError,
    decode_frame_body,
    decode_value,
    encode_frame,
    encode_value,
)


def roundtrip(value):
    return decode_value(json.loads(json.dumps(encode_value(value))))


class TestValueRoundTrips:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -7,
            3.5,
            "hello",
            b"\x00\xff\x80",
            (1, 2, 3),
            [1, "two", 3.0],
            {"a": 1, 2: "b"},
            set(),
            {1, 2, 3},
            frozenset({4, 5}),
            ((1, (2, (3,))), [frozenset({6})]),
        ],
    )
    def test_type_exact(self, value):
        decoded = roundtrip(value)
        assert decoded == value
        assert type(decoded) is type(value)

    def test_tuple_stays_tuple_inside_containers(self):
        # Type identity matters: signatures recompute canonical bytes
        # from the decoded object, and tuple vs list changes them.
        decoded = roundtrip({"k": (1, 2)})
        assert isinstance(decoded["k"], tuple)

    @pytest.mark.parametrize(
        "payload",
        [
            UpdatePayload(row=(0, 0, 1, 0, 2)),
            FollowersPayload(followers=(2, 3), line_edges=((1, 2), (2, 3)), epoch=4),
            MatrixDigestPayload(epoch=1, row_digests=("", "ab", "cd")),
            RowCertsPayload(certs=(UpdatePayload(row=(0, 1)),)),
        ],
    )
    def test_protocol_payloads(self, payload):
        assert roundtrip(payload) == payload

    def test_signed_update_survives_and_verifies(self):
        registry = KeyRegistry(4)
        signer = Authenticator(registry, 2)
        message = signer.sign(UpdatePayload(row=(0, 0, 0, 1, 0)))
        decoded = roundtrip(message)
        assert decoded == message
        # The receiver rebuilds the envelope from the wire; the MAC must
        # still verify against the re-derived canonical encoding.
        assert Authenticator(registry, 1).verify(decoded)

    def test_tampered_signed_update_fails_verification(self):
        registry = KeyRegistry(4)
        message = Authenticator(registry, 2).sign(UpdatePayload(row=(0, 0, 0, 1, 0)))
        encoded = encode_value(message)
        encoded["__signed__"][0]["__update__"][3] = 0  # flip the suspicion bit
        forged = decode_value(encoded)
        assert not Authenticator(registry, 1).verify(forged)

    def test_unencodable_type_rejected(self):
        with pytest.raises(WireError):
            encode_value(object())

    def test_depth_limit_on_encode_and_decode(self):
        deep = (1,)
        for _ in range(MAX_DEPTH + 2):
            deep = (deep,)
        with pytest.raises(WireError):
            encode_value(deep)
        nested = {"__tuple__": []}
        for _ in range(MAX_DEPTH + 2):
            nested = {"__tuple__": [nested]}
        with pytest.raises(WireError):
            decode_value(nested)


class TestDecodeDefenses:
    @pytest.mark.parametrize(
        "garbage",
        [
            [1, 2, 3],  # bare arrays are not in the vocabulary
            {"__tuple__": [], "extra": 1},  # multi-key tag object
            {"__nope__": []},  # unknown tag
            {"__bytes__": "zz"},  # not hex
            {"__sig__": [1]},  # wrong arity
            {"__sig__": ["one", "ab"]},  # signer must be an int
            {"__sig__": [True, "ab"]},  # bool is not an int here
            {"__update__": [0, "x"]},  # row entries must be ints
            {"__followers__": [[1], [[1, 2, 3]], 0]},  # edges must be pairs
            {"__digest__": [0, [1]]},  # digests must be strings
            {"__signed__": [{"__update__": []}, {"__update__": []}]},  # sig slot
            {"__map__": [[1, 2, 3]]},  # map entries must be pairs
        ],
    )
    def test_garbage_raises(self, garbage):
        with pytest.raises(WireError):
            decode_value(garbage)


class TestFraming:
    def frame(self, kind="qs.update", payload=(1, 2), src=1):
        return encode_frame(kind, payload, src)

    def test_roundtrip(self):
        body = self.frame()[4:]
        kind, payload, src = decode_frame_body(body)
        assert (kind, payload, src) == ("qs.update", (1, 2), 1)

    def test_decoder_handles_partial_feeds(self):
        data = self.frame() + self.frame(kind="heartbeat", payload=None, src=2)
        decoder = FrameDecoder()
        frames = []
        for i in range(len(data)):  # one byte at a time
            frames.extend(decoder.feed(data[i : i + 1]))
        assert [f[0] for f in frames] == ["qs.update", "heartbeat"]
        assert decoder.malformed == 0

    def test_decoder_handles_coalesced_frames(self):
        data = b"".join(self.frame(src=s) for s in (1, 2, 3))
        assert [f[2] for f in FrameDecoder().feed(data)] == [1, 2, 3]

    def test_malformed_frame_skipped_and_counted(self):
        junk = b"this is not json"
        data = (
            self.frame(src=1)
            + struct.pack(">I", len(junk))
            + junk
            + self.frame(src=3)
        )
        decoder = FrameDecoder()
        frames = decoder.feed(data)
        assert [f[2] for f in frames] == [1, 3]  # resynced past the bad frame
        assert decoder.malformed == 1

    @pytest.mark.parametrize(
        "body",
        [
            b'{"v":99,"k":"x","s":1,"p":null}',  # wrong version
            b'{"v":1,"k":"","s":1,"p":null}',  # empty kind
            b'{"v":1,"k":"x","s":0,"p":null}',  # src below 1
            b'{"v":1,"k":"x","s":true,"p":null}',  # src not an int
            b'{"v":1,"k":"x","s":1,"p":[1,2]}',  # bare array payload
            b"[1,2,3]",  # envelope not an object
        ],
    )
    def test_bad_envelope_counted_as_malformed(self, body):
        decoder = FrameDecoder()
        assert decoder.feed(struct.pack(">I", len(body)) + body) == []
        assert decoder.malformed == 1

    def test_oversized_length_prefix_is_fatal(self):
        decoder = FrameDecoder()
        with pytest.raises(WireError):
            decoder.feed(struct.pack(">I", MAX_FRAME_BYTES + 1))

    def test_oversized_payload_rejected_at_encode(self):
        with pytest.raises(WireError):
            encode_frame("x", "a" * (MAX_FRAME_BYTES + 1), 1)


class TestV2Framing:
    """The binary codec behind the same framing and decoder."""

    def frame(self, kind="qs.update", payload=(1, 2), src=1):
        return encode_frame(kind, payload, src, version=WIRE_V2)

    def test_roundtrip(self):
        kind, payload, src = decode_frame_body(self.frame()[4:])
        assert (kind, payload, src) == ("qs.update", (1, 2), 1)

    def test_unlisted_kind_travels_inline(self):
        # Kinds outside the hot one-byte tag table carry the string.
        body = self.frame(kind="custom.experimental")[4:]
        assert decode_frame_body(body)[0] == "custom.experimental"

    def test_v2_is_smaller_than_v1_for_protocol_traffic(self):
        payload = UpdatePayload(row=(0, 0, 1, 0, 2))
        v1 = encode_frame("qs.update", payload, 1, version=WIRE_V1)
        v2 = encode_frame("qs.update", payload, 1, version=WIRE_V2)
        assert len(v2) < len(v1)

    def test_decoded_payload_type_identical_to_v1(self):
        payload = {"k": (1, 2), "s": frozenset({3}), "b": b"\x00\xff"}
        via_v1 = decode_frame_body(encode_frame("x", payload, 1)[4:])[1]
        via_v2 = decode_frame_body(self.frame(payload=payload)[4:])[1]
        assert via_v1 == via_v2 == payload
        assert type(via_v2["k"]) is tuple and type(via_v2["s"]) is frozenset

    def test_signed_update_survives_v2_and_verifies(self):
        registry = KeyRegistry(4)
        message = Authenticator(registry, 2).sign(UpdatePayload(row=(0, 0, 0, 1, 0)))
        decoded = decode_frame_body(self.frame(payload=message)[4:])[1]
        assert decoded == message
        assert Authenticator(registry, 1).verify(decoded)

    def test_stream_decoder_handles_mixed_codec_frames(self):
        data = (
            encode_frame("a", 1, 1, version=WIRE_V1)
            + encode_frame("b", 2, 2, version=WIRE_V2)
            + encode_frame("c", 3, 3, version=WIRE_V1)
        )
        decoder = FrameDecoder()
        frames = []
        for i in range(len(data)):  # one byte at a time
            frames.extend(decoder.feed(data[i : i + 1]))
        assert [f[0] for f in frames] == ["a", "b", "c"]
        assert decoder.malformed == 0

    def test_v2_frame_at_v1_only_decoder_counted_malformed(self):
        decoder = FrameDecoder(accept_versions=(WIRE_V1,))
        assert decoder.feed(self.frame()) == []
        assert decoder.malformed == 1

    @pytest.mark.parametrize("src", [0, -1, 0x10000])
    def test_src_outside_u16_rejected_at_encode(self, src):
        with pytest.raises(WireError):
            encode_frame("x", None, src, version=WIRE_V2)

    def test_truncated_v2_body_is_typed_error(self):
        body = self.frame(payload=(1, 2, 3))[4:]
        for cut in range(1, len(body)):
            with pytest.raises(WireError):
                decode_frame_body(body[:cut])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(WireError):
            decode_frame_body(self.frame()[4:] + b"\x00")
