"""Fuzz tier: the wire codec under random payloads and random corruption.

Two guarantees, both load-bearing for the live runtime:

1. **Type-identical round-trip.**  Signature verification re-derives the
   canonical encoding from the *decoded* payload, so a tuple that came
   back as a list (or an int that came back as a bool) would silently
   reject every valid signature.  Random payloads drawn from the full
   wire vocabulary must decode to objects of exactly the same types, and
   signed envelopes must still verify after the trip.

2. **Typed failure under corruption.**  Anything a Byzantine peer or a
   broken link can put on a socket must surface as :class:`WireError`
   (or be silently skipped-and-counted by the stream decoder) — never as
   a ``KeyError``/``TypeError``/``RecursionError`` escaping into the
   receive loop.

Seeds come from ``REPRO_PROP_SEEDS`` (default ``3,7,11``); randomness is
:mod:`repro.util.rand` only.
"""

from __future__ import annotations

import os

import pytest

from repro.core.messages import (
    FollowersPayload,
    MatrixDigestPayload,
    RowCertsPayload,
    UpdatePayload,
)
from repro.crypto.authenticator import Authenticator, SignedMessage
from repro.crypto.keys import KeyRegistry
from repro.net.wire import (
    KIND_ACK,
    KIND_HELLO,
    WIRE_V1,
    WIRE_V2,
    WIRE_VERSIONS,
    FrameDecoder,
    WireError,
    decode_frame_body,
    encode_ack,
    encode_frame,
    encode_hello,
    is_control_kind,
    negotiate_ack_version,
    parse_ack_version,
)
from repro.util.rand import DeterministicRng, make_rng

pytestmark = pytest.mark.props

N = 5
SEEDS = [
    int(chunk)
    for chunk in os.environ.get("REPRO_PROP_SEEDS", "3,7,11").split(",")
    if chunk.strip()
]

_REGISTRY = KeyRegistry(N)
_AUTH = {pid: Authenticator(_REGISTRY, pid) for pid in range(1, N + 1)}


def random_scalar(rng: DeterministicRng):
    kind = rng.randint(0, 5)
    if kind == 0:
        return None
    if kind == 1:
        return rng.coin(0.5)
    if kind == 2:
        return rng.randint(-(2 ** 40), 2 ** 40)
    if kind == 3:
        return rng.uniform(-1e6, 1e6)
    if kind == 4:
        return "".join(rng.choice("abc é☃{}\"\\") for _ in range(rng.randint(0, 12)))
    return bytes(rng.randint(0, 255) for _ in range(rng.randint(0, 16)))


def random_value(rng: DeterministicRng, depth: int = 0):
    """A random payload from the full wire vocabulary, bounded depth."""
    if depth >= 3 or rng.coin(0.4):
        return random_scalar(rng)
    kind = rng.randint(0, 7)
    size = rng.randint(0, 4)
    if kind == 0:
        return tuple(random_value(rng, depth + 1) for _ in range(size))
    if kind == 1:
        return [random_value(rng, depth + 1) for _ in range(size)]
    if kind == 2 or kind == 3:
        items = {rng.randint(0, 2 ** 20) for _ in range(size)}
        return frozenset(items) if kind == 3 else items
    if kind == 4:
        return {random_scalar(rng) if rng.coin(0.5) else rng.randint(0, 99):
                random_value(rng, depth + 1) for _ in range(size)}
    if kind == 5:
        return random_protocol_payload(rng)
    # Signed envelope around a nested payload — the hot case in practice.
    signer = rng.randint(1, N)
    return _AUTH[signer].sign(random_value(rng, depth + 1))


def random_protocol_payload(rng: DeterministicRng):
    kind = rng.randint(0, 3)
    if kind == 0:
        return UpdatePayload(row=tuple(rng.randint(0, 9) for _ in range(N + 1)))
    if kind == 1:
        return FollowersPayload(
            followers=tuple(sorted({rng.randint(1, N) for _ in range(3)})),
            line_edges=tuple(
                (rng.randint(1, N), rng.randint(1, N)) for _ in range(rng.randint(0, 3))
            ),
            epoch=rng.randint(1, 9),
        )
    if kind == 2:
        return MatrixDigestPayload(
            epoch=rng.randint(1, 9),
            row_digests=tuple(f"{rng.randint(0, 2 ** 32):08x}" for _ in range(N + 1)),
        )
    signer = rng.randint(1, N)
    return RowCertsPayload(
        certs=tuple(
            _AUTH[signer].sign(UpdatePayload(row=tuple(rng.randint(0, 9) for _ in range(N + 1))))
            for _ in range(rng.randint(1, 2))
        )
    )


def assert_type_identical(sent, received, path="payload"):
    """Structural equality where every node's *type* must match exactly."""
    assert type(sent) is type(received), (
        f"{path}: {type(sent).__name__} came back as {type(received).__name__}"
    )
    if isinstance(sent, (tuple, list)):
        assert len(sent) == len(received), path
        for i, (a, b) in enumerate(zip(sent, received)):
            assert_type_identical(a, b, f"{path}[{i}]")
    elif isinstance(sent, dict):
        assert set(sent) == set(received), path
        for key in sent:
            assert_type_identical(sent[key], received[key], f"{path}[{key!r}]")
    elif isinstance(sent, SignedMessage):
        assert sent.signature == received.signature, path
        assert_type_identical(sent.payload, received.payload, f"{path}.payload")
    elif isinstance(sent, RowCertsPayload):
        assert_type_identical(sent.certs, received.certs, f"{path}.certs")
    else:
        assert sent == received, path


def random_frames(rng: DeterministicRng, count: int, version: int = WIRE_V1):
    """``count`` random valid (kind, payload, src, frame-bytes) tuples.

    The kind pool deliberately mixes hot kinds (one-byte V2 kind tags)
    with ``"k"`` (inline kind string), so both V2 header shapes fuzz.
    """
    frames = []
    for i in range(count):
        item = rng.child(i)
        kind = item.choice(["qs.update", "heartbeat", "fd.ping", "xp.prepare", "k"])
        payload = random_value(item)
        src = item.randint(1, N)
        frames.append(
            (kind, payload, src, encode_frame(kind, payload, src, version=version))
        )
    return frames


@pytest.mark.parametrize("version", WIRE_VERSIONS)
@pytest.mark.parametrize("seed", SEEDS)
def test_random_frames_round_trip_type_identically(seed, version):
    rng = make_rng(seed).child("roundtrip")
    signed_seen = 0
    for kind, payload, src, frame in random_frames(rng, 60, version=version):
        decoded_kind, decoded_payload, decoded_src = decode_frame_body(frame[4:])
        assert (decoded_kind, decoded_src) == (kind, src)
        assert_type_identical(payload, decoded_payload)
        if isinstance(payload, SignedMessage):
            signed_seen += 1
            # The decoded envelope must still verify: canonical encoding
            # survived the trip bit-for-bit.
            assert _AUTH[1].verify(decoded_payload)
    assert signed_seen > 0  # the generator must actually cover envelopes


@pytest.mark.parametrize("version", WIRE_VERSIONS)
@pytest.mark.parametrize("seed", SEEDS)
def test_byte_mutations_raise_only_wire_errors(seed, version):
    rng = make_rng(seed).child("mutate")
    for kind, payload, src, frame in random_frames(rng, 25, version=version):
        body = frame[4:]
        for trial in range(8):
            mrng = rng.child(kind, trial, len(body))
            mutated = bytearray(body)
            for _ in range(mrng.randint(1, 6)):
                mutated[mrng.randint(0, len(mutated) - 1)] = mrng.randint(0, 255)
            truncated = bytes(mutated[: mrng.randint(0, len(mutated))])
            for candidate in (bytes(mutated), truncated):
                try:
                    decode_frame_body(candidate)
                except WireError:
                    pass  # the typed, expected failure
                except Exception as exc:  # noqa: BLE001 - the property under test
                    pytest.fail(
                        f"seed={seed}: {type(exc).__name__} leaked from decoder: {exc!r}"
                    )


@pytest.mark.parametrize("version", WIRE_VERSIONS)
@pytest.mark.parametrize("seed", SEEDS)
def test_stream_decoder_survives_corrupt_streams(seed, version):
    rng = make_rng(seed).child("stream")
    for trial in range(15):
        trial_rng = rng.child(trial)
        frames = random_frames(
            trial_rng.child("gen"), trial_rng.randint(2, 6), version=version
        )
        stream = bytearray(b"".join(frame for _, _, _, frame in frames))

        # Clean stream in random-sized chunks: every frame decodes.
        decoder = FrameDecoder()
        got = []
        cursor = 0
        while cursor < len(stream):
            step = trial_rng.randint(1, 64)
            got.extend(decoder.feed(bytes(stream[cursor:cursor + step])))
            cursor += step
        assert len(got) == len(frames) and decoder.malformed == 0

        # Corrupted copy: flips may hit bodies (skipped + counted) or
        # length prefixes (typed WireError ending the stream) — nothing
        # else may escape, and progress is bounded by the input.
        corrupt = bytearray(stream)
        for _ in range(trial_rng.randint(1, 10)):
            corrupt[trial_rng.randint(0, len(corrupt) - 1)] = trial_rng.randint(0, 255)
        decoder = FrameDecoder()
        decoded = 0
        cursor = 0
        try:
            while cursor < len(corrupt):
                step = trial_rng.randint(1, 64)
                decoded += len(decoder.feed(bytes(corrupt[cursor:cursor + step])))
                cursor += step
        except WireError:
            pass  # framing violation: connection drop, the documented response
        except Exception as exc:  # noqa: BLE001 - the property under test
            pytest.fail(f"seed={seed}: stream loop leaked {type(exc).__name__}: {exc!r}")
        # Corruption can only lose frames, never mint valid ones.
        assert decoded <= len(frames)


# ------------------------------------------------------------- negotiation
# The hello/ack handshake must land inside the version vocabulary for
# *any* payload a peer can send, and a mixed V1/V2 pair must settle on V1
# using only control frames — no protocol frame is ever minted before the
# codec is agreed.


@pytest.mark.parametrize("seed", SEEDS)
def test_negotiation_settles_in_vocabulary_under_garbage(seed):
    rng = make_rng(seed).child("negotiate")
    for trial in range(40):
        item = rng.child(trial)
        garbage = random_value(item)
        own_max = item.choice(list(WIRE_VERSIONS))
        acked = negotiate_ack_version(garbage, own_max)
        assert acked in WIRE_VERSIONS and acked <= own_max
        parsed = parse_ack_version(garbage, own_max)
        assert parsed in WIRE_VERSIONS and parsed <= own_max


def test_v1_and_v2_peers_settle_on_v1_without_minting_protocol_frames():
    # Dialer speaks up to V2; listener only V1.  The hello travels as a
    # V1 frame, so the V1-only decoder parses it without counting it
    # malformed — and it is control traffic, never delivered to a host.
    listener = FrameDecoder(accept_versions=(WIRE_V1,))
    hello_frames = listener.feed(encode_hello(1, WIRE_V2))
    assert [kind for kind, _, _ in hello_frames] == [KIND_HELLO]
    assert listener.malformed == 0
    kind, hello_payload, src = hello_frames[0]
    assert is_control_kind(kind) and src == 1

    acked = negotiate_ack_version(hello_payload, WIRE_V1)
    assert acked == WIRE_V1

    # The ack is V1 too; the V2 dialer accepts the downgrade.
    dialer = FrameDecoder()
    ack_frames = dialer.feed(encode_ack(2, acked))
    assert [kind for kind, _, _ in ack_frames] == [KIND_ACK]
    assert dialer.malformed == 0
    assert is_control_kind(ack_frames[0][0])
    assert parse_ack_version(ack_frames[0][1], WIRE_V2) == WIRE_V1

    # Symmetric pair of V2 speakers settles on V2 the same way.
    v2_hello = FrameDecoder().feed(encode_hello(1, WIRE_V2))[0]
    assert negotiate_ack_version(v2_hello[1], WIRE_V2) == WIRE_V2


# -------------------------------------------------------------- adversary
# E28 hardening: the exact artifacts the adversary engine broadcasts —
# equivocating signed UPDATE pairs and forged garbage rows — must travel
# both codecs type-identically, keep verifying afterwards, and fail as
# WireError (never anything else) once tampered with.


@pytest.mark.parametrize("version", WIRE_VERSIONS)
@pytest.mark.parametrize("seed", SEEDS)
def test_equivocating_update_pairs_survive_the_wire(seed, version):
    rng = make_rng(seed).child("equivocate")
    for trial in range(20):
        item = rng.child(trial)
        signer = item.randint(1, N)
        base = [item.randint(0, 9) for _ in range(N + 1)]
        variant_a, variant_b = list(base), list(base)
        victim_a = item.randint(1, N)
        victim_b = 1 + victim_a % N
        variant_a[victim_a] += item.randint(1, 5)
        variant_b[victim_b] += item.randint(1, 5)
        pair = [
            _AUTH[signer].sign(UpdatePayload(row=tuple(variant_a))),
            _AUTH[signer].sign(UpdatePayload(row=tuple(variant_b))),
        ]
        for signed in pair:
            frame = encode_frame("qs.update", signed, signer, version=version)
            _, decoded, _ = decode_frame_body(frame[4:])
            assert_type_identical(signed, decoded)
            # Both halves of the equivocation verify independently: the
            # codec cannot tell a lie from the truth, only alteration.
            assert _AUTH[1].verify(decoded)
            assert decoded.signature.signer == signer
        # The two decoded rows genuinely conflict.
        frames = [
            decode_frame_body(
                encode_frame("qs.update", s, signer, version=version)[4:]
            )[1]
            for s in pair
        ]
        assert frames[0].payload.row != frames[1].payload.row


@pytest.mark.parametrize("version", WIRE_VERSIONS)
@pytest.mark.parametrize("seed", SEEDS)
def test_forged_garbage_rows_fail_typed_or_round_trip(seed, version):
    """The codec splits the engine's forged rows at the type boundary:
    all-int garbage (wrong arity, negatives, absurd stamps) is wire-legal
    and round-trips verified — rejecting it is the matrix's job — while
    rows with non-int cells fail *at encode time* as WireError, never as
    anything else.  Tampered frames never yield a different payload that
    still verifies."""
    from repro.adversary.strategies import forge_garbage_rows

    rng = make_rng(seed).child("forged-rows")
    rows = forge_garbage_rows(rng.child("gen"), N, 30)
    encoded = rejected = 0
    for index, row in enumerate(rows):
        signer = 1 + index % N
        signed = _AUTH[signer].sign(UpdatePayload(row=row))
        wire_legal = all(
            isinstance(value, int) and not isinstance(value, bool)
            for value in row
        )
        # V2 validates rows while *encoding*, V1 while *decoding* — the
        # typed WireError may fire at either boundary, but nothing else
        # may, and only all-int rows make it through both.
        try:
            frame = encode_frame("qs.update", signed, signer, version=version)
            _, decoded, _ = decode_frame_body(frame[4:])
        except WireError:
            assert not wire_legal
            rejected += 1
            continue
        except Exception as exc:  # noqa: BLE001 - the property under test
            pytest.fail(
                f"seed={seed}: {type(exc).__name__} leaked from codec: {exc!r}"
            )
        assert wire_legal
        encoded += 1
        assert_type_identical(signed, decoded)
        assert _AUTH[1].verify(decoded)

        mrng = rng.child("mutate", index)
        body = bytearray(frame[4:])
        for _ in range(mrng.randint(1, 4)):
            body[mrng.randint(0, len(body) - 1)] = mrng.randint(0, 255)
        try:
            _, tampered, _ = decode_frame_body(bytes(body))
        except WireError:
            continue  # typed failure: the documented response
        except Exception as exc:  # noqa: BLE001 - the property under test
            pytest.fail(
                f"seed={seed}: {type(exc).__name__} leaked from decoder: {exc!r}"
            )
        if isinstance(tampered, SignedMessage) and _AUTH[1].verify(tampered):
            assert tampered.payload == signed.payload
    # The generator must exercise both sides of the boundary.
    assert encoded > 0 and rejected > 0
