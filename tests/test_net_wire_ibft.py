"""IBFT payloads over both wire codecs: type-identical round-trips.

The IBFT backend's five message kinds must survive V1 (JSON) and V2
(binary) framing with enough type fidelity that protocol signatures
still verify on the decoded objects — votes stay digest-only strings,
certificates keep their nested signed messages, and round-change
history remains absolute (no checkpoint layer to lean on).
"""

import pytest

from repro.crypto.authenticator import Authenticator
from repro.crypto.keys import KeyRegistry
from repro.net.wire import (
    _KIND_IDS,
    WIRE_V1,
    WIRE_V2,
    WireError,
    decode_frame_body,
    encode_frame_body,
)
from repro.ibft.messages import (
    KIND_COMMIT,
    KIND_NEWROUND,
    KIND_PREPARE,
    KIND_PREPREPARE,
    KIND_ROUNDCHANGE,
    IbftCommitCertificate,
    IbftCommitPayload,
    IbftPreparePayload,
    NewRoundPayload,
    PrePreparePayload,
    RoundChangePayload,
)
from repro.xpaxos.messages import ClientRequest

N = 5


@pytest.fixture
def auths():
    registry = KeyRegistry(N + 2)
    return {pid: Authenticator(registry, pid) for pid in range(1, N + 3)}


def _signed_request(auths, client=N + 1, sequence=0, op=("put", "k", 1)):
    request = ClientRequest(client=client, sequence=sequence, op=op)
    return auths[client].sign(request)


def _signed_preprepare(auths, round=0, slot=0, leader=1, batch=1):
    preprepare = PrePreparePayload(
        round=round,
        slot=slot,
        signed_requests=tuple(
            _signed_request(auths, sequence=i, op=("put", f"k{i}", i))
            for i in range(batch)
        ),
    )
    return auths[leader].sign(preprepare)


def _certificate(auths, round=0, slot=0, voters=(2, 3)):
    signed_preprepare = _signed_preprepare(auths, round=round, slot=slot)
    wanted = signed_preprepare.payload.request_digest()
    commits = tuple(
        auths[pid].sign(
            IbftCommitPayload(round=round, slot=slot, request_digest=wanted)
        )
        for pid in voters
    )
    return IbftCommitCertificate(preprepare=signed_preprepare, commits=commits)


def _roundtrip(kind, payload, src, version):
    body = encode_frame_body(kind, payload, src, version=version)
    got_kind, got_payload, got_src = decode_frame_body(body)
    assert (got_kind, got_src) == (kind, src)
    return got_payload


def test_every_ibft_kind_has_a_stable_v2_id():
    """The append-only compact-id table covers the IBFT vocabulary."""
    assert _KIND_IDS[KIND_PREPREPARE] == 15
    assert _KIND_IDS[KIND_PREPARE] == 16
    assert _KIND_IDS[KIND_COMMIT] == 17
    assert _KIND_IDS[KIND_ROUNDCHANGE] == 18
    assert _KIND_IDS[KIND_NEWROUND] == 19


@pytest.mark.parametrize("version", [WIRE_V1, WIRE_V2])
class TestIbftRoundTrips:
    def test_preprepare_with_request_batch(self, auths, version):
        signed = _signed_preprepare(auths, round=3, slot=17, batch=3)
        got = _roundtrip(KIND_PREPREPARE, signed, 1, version)
        assert got == signed
        assert auths[2].verify(got)
        inner = got.payload
        assert isinstance(inner, PrePreparePayload)
        assert inner.request_digest() == signed.payload.request_digest()
        for sm in inner.signed_requests:
            assert auths[2].verify(sm)
            assert isinstance(sm.payload.op, tuple)

    def test_prepare_and_commit_votes_stay_digest_only(self, auths, version):
        wanted = _signed_preprepare(auths).payload.request_digest()
        for kind, cls in (
            (KIND_PREPARE, IbftPreparePayload),
            (KIND_COMMIT, IbftCommitPayload),
        ):
            vote = cls(round=2, slot=9, request_digest=wanted)
            signed = auths[3].sign(vote)
            got = _roundtrip(kind, signed, 3, version)
            assert got == signed
            assert auths[1].verify(got)
            assert type(got.payload) is cls
            assert got.payload.request_digest == wanted
            assert isinstance(got.payload.request_digest, str)

    def test_commit_certificate_nested_signatures_survive(self, auths, version):
        cert = _certificate(auths, round=1, slot=4)
        got = _roundtrip("ibft.state", cert, 1, version)
        assert got == cert
        assert isinstance(got, IbftCommitCertificate)
        assert auths[5].verify(got.preprepare)
        for commit in got.commits:
            assert auths[5].verify(commit)
            assert commit.payload.request_digest == \
                got.preprepare.payload.request_digest()

    def test_round_change_full_round_trip(self, auths, version):
        payload = RoundChangePayload(
            new_round=6,
            committed=(
                _certificate(auths, round=0, slot=0),
                _certificate(auths, round=0, slot=1),
            ),
            prepared=((2, _signed_preprepare(auths, round=0, slot=2)),),
        )
        signed = auths[2].sign(payload)
        got = _roundtrip(KIND_ROUNDCHANGE, signed, 2, version)
        assert got == signed
        assert auths[1].verify(got)
        inner = got.payload
        assert isinstance(inner, RoundChangePayload)
        assert isinstance(inner.committed[0], IbftCommitCertificate)
        assert isinstance(inner.prepared[0], tuple) and inner.prepared[0][0] == 2

    def test_round_change_with_empty_history(self, auths, version):
        payload = RoundChangePayload(new_round=1, committed=(), prepared=())
        signed = auths[4].sign(payload)
        got = _roundtrip(KIND_ROUNDCHANGE, signed, 4, version)
        assert got == signed
        assert got.payload.committed == ()
        assert got.payload.prepared == ()

    def test_new_round_round_trip(self, auths, version):
        payload = NewRoundPayload(round=6, committed=(_certificate(auths),))
        signed = auths[2].sign(payload)
        got = _roundtrip(KIND_NEWROUND, signed, 2, version)
        assert got == signed
        assert auths[3].verify(got)

    def test_tampered_vote_fails_verification(self, auths, version):
        wanted = _signed_preprepare(auths).payload.request_digest()
        signed = auths[3].sign(
            IbftCommitPayload(round=2, slot=9, request_digest=wanted)
        )
        body = encode_frame_body(KIND_COMMIT, signed, 3, version=version)
        _, got, _ = decode_frame_body(body)
        assert auths[1].verify(got)
        forged = IbftCommitPayload(round=2, slot=9, request_digest="0" * 64)
        forged_body = encode_frame_body(
            KIND_COMMIT, type(got)(forged, got.signature), 3, version=version
        )
        _, tampered, _ = decode_frame_body(forged_body)
        assert not auths[1].verify(tampered)


class TestStrictDecoding:
    def test_v1_vote_digest_must_be_string(self):
        import json

        body = json.dumps(
            {"v": 1, "k": "ibft.prepare", "s": 3, "p": {"__iprep__": [2, 9, 7]}}
        ).encode()
        with pytest.raises(WireError):
            decode_frame_body(body)

    def test_v1_preprepare_wrong_arity_raises(self):
        import json

        body = json.dumps(
            {"v": 1, "k": "ibft.preprepare", "s": 1, "p": {"__ipp__": [0, 0]}}
        ).encode()
        with pytest.raises(WireError):
            decode_frame_body(body)

    def test_v2_truncated_round_change_raises(self, auths=None):
        registry = KeyRegistry(N + 2)
        auth = Authenticator(registry, 1)
        payload = RoundChangePayload(new_round=1, committed=(), prepared=())
        signed = auth.sign(payload)
        body = encode_frame_body(KIND_ROUNDCHANGE, signed, 1, version=WIRE_V2)
        for cut in (len(body) // 2, len(body) - 1):
            with pytest.raises(WireError):
                decode_frame_body(body[:cut])
