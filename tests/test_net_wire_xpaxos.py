"""XPaxos payloads over both wire codecs: type-identical round-trips.

The service layer sends client requests and replies across real sockets,
and view changes ship certificates — all of it must survive both codecs
with enough type fidelity that protocol signatures still verify on the
decoded objects.
"""

import pytest

from repro.crypto.authenticator import Authenticator
from repro.crypto.keys import KeyRegistry
from repro.net.wire import (
    WIRE_V1,
    WIRE_V2,
    WireError,
    decode_frame_body,
    encode_frame_body,
)
from repro.xpaxos.messages import (
    KIND_CHECKPOINT,
    KIND_COMMIT,
    KIND_NEWVIEW,
    KIND_PREPARE,
    KIND_REPLY,
    KIND_REQUEST,
    KIND_VIEWCHANGE,
    CheckpointCertificate,
    CheckpointPayload,
    ClientRequest,
    CommitCertificate,
    CommitPayload,
    NewViewPayload,
    PreparePayload,
    ReplyPayload,
    ViewChangePayload,
)

N = 5


@pytest.fixture
def auths():
    registry = KeyRegistry(N + 2)
    return {pid: Authenticator(registry, pid) for pid in range(1, N + 3)}


def _signed_request(auths, client=N + 1, sequence=0, op=("put", "k", 1)):
    request = ClientRequest(client=client, sequence=sequence, op=op)
    return auths[client].sign(request)


def _signed_prepare(auths, view=0, slot=0, leader=1, **request_kwargs):
    prepare = PreparePayload(
        view=view, slot=slot, signed_requests=(_signed_request(auths, **request_kwargs),)
    )
    return auths[leader].sign(prepare)


def _certificate(auths, view=0, slot=0):
    signed_prepare = _signed_prepare(auths, view=view, slot=slot)
    commits = tuple(
        auths[pid].sign(CommitPayload(view=view, slot=slot, prepare=signed_prepare))
        for pid in (2, 3)
    )
    return CommitCertificate(prepare=signed_prepare, commits=commits)


def _roundtrip(kind, payload, src, version):
    body = encode_frame_body(kind, payload, src, version=version)
    got_kind, got_payload, got_src = decode_frame_body(body)
    assert (got_kind, got_src) == (kind, src)
    return got_payload


@pytest.mark.parametrize("version", [WIRE_V1, WIRE_V2])
class TestXPaxosRoundTrips:
    def test_client_request_signature_survives(self, auths, version):
        signed = _signed_request(auths, op=("cas", "key", None, ("v", 2)))
        got = _roundtrip(KIND_REQUEST, signed, N + 1, version)
        assert got == signed
        assert isinstance(got.payload, ClientRequest)
        assert got.payload.op == ("cas", "key", None, ("v", 2))
        assert isinstance(got.payload.op, tuple)
        assert auths[1].verify(got)

    def test_prepare_with_request_batch(self, auths, version):
        prepare = PreparePayload(
            view=3,
            slot=17,
            signed_requests=tuple(
                _signed_request(auths, sequence=i, op=("put", f"k{i}", i)) for i in range(3)
            ),
        )
        signed = auths[1].sign(prepare)
        got = _roundtrip(KIND_PREPARE, signed, 1, version)
        assert got == signed
        assert auths[2].verify(got)
        inner = got.payload
        assert isinstance(inner, PreparePayload)
        assert inner.request_digest() == prepare.request_digest()
        for sm in inner.signed_requests:
            assert auths[2].verify(sm)

    def test_commit_embeds_signed_prepare(self, auths, version):
        signed_prepare = _signed_prepare(auths, view=1, slot=4)
        commit = CommitPayload(view=1, slot=4, prepare=signed_prepare)
        signed = auths[3].sign(commit)
        got = _roundtrip(KIND_COMMIT, signed, 3, version)
        assert got == signed
        assert auths[1].verify(got)
        assert auths[1].verify(got.payload.prepare)

    def test_reply_result_types(self, auths, version):
        for result in (None, 42, "value", ("ok", ("v", 1)), ("stale", 3, 9), True):
            reply = ReplyPayload(client=N + 1, sequence=7, result=result, replica=2, view=5)
            signed = auths[2].sign(reply)
            got = _roundtrip(KIND_REPLY, signed, 2, version)
            assert got == signed
            assert type(got.payload.result) is type(result)
            assert auths[4].verify(got)

    def test_checkpoint_and_certificate(self, auths, version):
        vote = CheckpointPayload(view=2, slot_count=128, state_digest="ab" * 32)
        signed_vote = auths[1].sign(vote)
        got_vote = _roundtrip(KIND_CHECKPOINT, signed_vote, 1, version)
        assert got_vote == signed_vote

        cert = CheckpointCertificate(
            votes=tuple(auths[pid].sign(vote) for pid in (1, 2, 3))
        )
        got = _roundtrip("xp.state", cert, 1, version)
        assert got == cert
        assert isinstance(got, CheckpointCertificate)
        assert got.payload == vote
        for sm in got.votes:
            assert auths[5].verify(sm)

    def test_view_change_full_round_trip(self, auths, version):
        snapshot = ("xp-snapshot", 2, (("request", N + 1, 0, ("put", "k", 1)),), (), ())
        payload = ViewChangePayload(
            new_view=6,
            committed=(_certificate(auths, view=0, slot=0), _certificate(auths, view=0, slot=1)),
            prepared=((2, _signed_prepare(auths, view=0, slot=2)),),
            checkpoint=CheckpointCertificate(
                votes=tuple(
                    auths[pid].sign(CheckpointPayload(view=0, slot_count=2, state_digest="d" * 8))
                    for pid in (1, 2, 3)
                )
            ),
            snapshot=snapshot,
        )
        signed = auths[2].sign(payload)
        got = _roundtrip(KIND_VIEWCHANGE, signed, 2, version)
        assert got == signed
        assert auths[1].verify(got)
        inner = got.payload
        assert isinstance(inner, ViewChangePayload)
        assert isinstance(inner.committed[0], CommitCertificate)
        assert isinstance(inner.prepared[0], tuple) and inner.prepared[0][0] == 2
        assert isinstance(inner.snapshot, tuple)

    def test_view_change_without_checkpoint(self, auths, version):
        payload = ViewChangePayload(new_view=1, committed=(), prepared=())
        signed = auths[4].sign(payload)
        got = _roundtrip(KIND_VIEWCHANGE, signed, 4, version)
        assert got == signed
        assert got.payload.checkpoint is None
        assert got.payload.snapshot is None

    def test_new_view_round_trip(self, auths, version):
        payload = NewViewPayload(
            view=6,
            committed=(_certificate(auths),),
            checkpoint=None,
            snapshot=None,
        )
        signed = auths[2].sign(payload)
        got = _roundtrip(KIND_NEWVIEW, signed, 2, version)
        assert got == signed
        assert auths[3].verify(got)

    def test_tampered_request_fails_verification(self, auths, version):
        signed = _signed_request(auths)
        body = encode_frame_body(KIND_REQUEST, signed, N + 1, version=version)
        _, got, _ = decode_frame_body(body)
        assert auths[1].verify(got)
        forged = ClientRequest(client=got.payload.client, sequence=got.payload.sequence,
                               op=("put", "k", 999))
        forged_body = encode_frame_body(
            KIND_REQUEST,
            type(got)(forged, got.signature),
            N + 1,
            version=version,
        )
        _, tampered, _ = decode_frame_body(forged_body)
        assert not auths[1].verify(tampered)


class TestStrictDecoding:
    def test_v1_request_op_must_be_tuple(self):
        import json

        body = json.dumps(
            {"v": 1, "k": "xp.request", "s": 6, "p": {"__xreq__": [6, 0, {"__list__": []}]}}
        ).encode()
        with pytest.raises(WireError):
            decode_frame_body(body)

    def test_v1_snapshot_must_be_tuple_or_none(self):
        import json

        body = json.dumps(
            {
                "v": 1,
                "k": "xp.viewchange",
                "s": 2,
                "p": {"__xvc__": [1, [], [], None, {"__list__": []}]},
            }
        ).encode()
        with pytest.raises(WireError):
            decode_frame_body(body)

    def test_v2_truncated_reply_raises(self, auths=None):
        registry = KeyRegistry(3)
        auth = Authenticator(registry, 1)
        reply = auth.sign(ReplyPayload(client=2, sequence=0, result=None, replica=1, view=0))
        body = encode_frame_body("xp.reply", reply, 1, version=WIRE_V2)
        for cut in (len(body) // 2, len(body) - 1):
            with pytest.raises(WireError):
                decode_frame_body(body[:cut])
