"""Integration tests: the observability layer wired through the stack.

Three properties:

- the registry snapshot of a full simulated run *agrees with* the
  modules' own internal counters (the collectors fold the right ints);
- protocol spans cover the run's significant moments with host-clock
  stamps;
- turning metrics off (``SimulationConfig.metrics=False``) leaves the
  protocol trace **byte-identical** — instrumentation never touches the
  event log, the RNG streams, or the schedule.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    SPAN_EPOCH_ADVANCE,
    SPAN_FAULT,
    SPAN_QUORUM_CHANGE,
    SPAN_SUSPICION_EDGE,
    metric_value,
)
from repro.sim.worlds import build_qs_world

N, F, SEED = 5, 2, 7


def crashed_world(metrics: bool = True, duration: float = 120.0):
    """The canonical scenario: p1 (a quorum member) crashes at t=10."""
    sim, modules = build_qs_world(N, F, seed=SEED, metrics=metrics)
    sim.at(10.0, lambda: sim.host(1).crash())
    sim.run_until(duration)
    return sim, modules


class TestMetricsMatchModules:
    def test_registry_agrees_with_module_counters(self):
        sim, modules = crashed_world()
        snapshot = sim.obs.snapshot()
        for pid in (2, 3, 4, 5):
            module = modules[pid]
            fd = sim.host(pid).fd
            assert metric_value(snapshot, "qs_quorum_changes_total", pid=pid) == \
                module.total_quorums_issued()
            assert metric_value(snapshot, "qs_epoch", pid=pid) == module.epoch
            assert metric_value(snapshot, "qs_quorum_size", pid=pid) == len(module.qlast)
            assert metric_value(snapshot, "fd_suspicions_raised_total", pid=pid) == \
                fd.suspicions_raised
            assert metric_value(snapshot, "hb_beats_sent_total", pid=pid) > 0
            assert metric_value(snapshot, "matrix_entry_writes_total", pid=pid) == \
                module.matrix.version

    def test_message_stats_folded_in(self):
        sim, _modules = crashed_world()
        snapshot = sim.obs.snapshot()
        sent = metric_value(snapshot, "messages_sent_total", kind="heartbeat")
        delivered = metric_value(snapshot, "messages_delivered_total", kind="heartbeat")
        assert sent == sim.network.stats.sent_by_kind["heartbeat"] > 0
        assert delivered is not None and 0 < delivered <= sent

    def test_detection_latency_histogram_fills(self):
        sim, _modules = crashed_world()
        snapshot = sim.obs.snapshot()
        samples = sum(
            e["count"] for e in snapshot["metrics"]
            if e["name"] == "fd_detection_latency"
        )
        # Every surviving process eventually suspects the crashed p1.
        assert samples == N - 1

    def test_spans_cover_the_run(self):
        sim, modules = crashed_world()
        names = {span.name for span in sim.obs.spans.spans}
        assert {SPAN_FAULT, SPAN_SUSPICION_EDGE, SPAN_QUORUM_CHANGE} <= names
        (fault,) = sim.obs.spans.by_name(SPAN_FAULT)
        assert (fault.pid, fault.start, fault.attrs["what"]) == (1, 10.0, "crash")
        for span in sim.obs.spans.by_name(SPAN_QUORUM_CHANGE):
            quorum = span.attrs["quorum"]
            assert quorum == tuple(sorted(quorum)) and len(quorum) == N - F
            assert span.attrs["epoch"] >= 1
        if any(m.epoch > 1 for m in modules.values()):
            assert sim.obs.spans.by_name(SPAN_EPOCH_ADVANCE)


class TestByteIdentity:
    def test_chaos_off_trace_identical_with_and_without_metrics(self):
        sim_on, _ = crashed_world(metrics=True)
        sim_off, _ = crashed_world(metrics=False)
        assert sim_on.log.render() == sim_off.log.render()

    def test_metrics_off_records_nothing(self):
        sim, _modules = crashed_world(metrics=False)
        assert sim.obs.enabled is False
        assert sim.obs.snapshot()["metrics"] == []
        assert len(sim.obs.spans) == 0

    def test_same_seed_same_snapshot(self):
        """The snapshot itself is deterministic (modulo nothing)."""
        first = crashed_world()[0].obs.snapshot()
        second = crashed_world()[0].obs.snapshot()
        assert first == second


def test_matrix_observer_only_fires_on_real_increases():
    from repro.core.suspicion_matrix import SuspicionMatrix

    matrix = SuspicionMatrix(4)
    calls = []
    matrix.observer = lambda *args: calls.append(args)
    assert matrix.mark(1, 2, 3)
    assert not matrix.mark(1, 2, 2)  # lower stamp: no write, no callback
    matrix.merge_row(1, (0, 0, 3, 5, 0))  # only (1,3)->5 increases
    assert calls == [(1, 2, 3), (1, 3, 5)]
