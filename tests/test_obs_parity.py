"""Sim<->net **metric** parity: both runtimes export the same registry.

The observability tentpole's acceptance scenario: run the canonical
metric-parity schedule (n=5, f=2, kill a non-quorum member) on the
deterministic simulator and on a live loopback cluster, then compare
the protocol-logic metrics — ``qs_quorum_changes_total`` and
``qs_epoch`` per correct replica — for exact equality.  Wall-clock
families (latency histograms) are excluded by design; protocol logic is
what must not diverge between runtimes.

Marked ``net`` (subprocess mesh, ~10s wall) *and* ``props`` (it is the
parity leg of the property tier; CI's props job runs it and uploads the
metrics JSONL artifact from the run directory it leaves behind).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.net.parity import (
    METRIC_PARITY_SCHEDULE,
    PARITY_METRIC_NAMES,
    metric_parity_problems,
    run_net_metrics,
    run_sim_metrics,
)
from repro.obs import SNAPSHOT_SCHEMA, metric_value

pytestmark = [pytest.mark.net, pytest.mark.props]

#: Written under the repo (not tmp_path) so CI can upload it as an
#: artifact after the job; overwritten per run, gitignored directory.
ARTIFACT_DIR = Path(".benchmarks") / "parity_metrics"


def test_metric_parity_sim_vs_net():
    schedule = METRIC_PARITY_SCHEDULE
    seed = int(os.environ.get("REPRO_PROP_SEEDS", "3").split(",")[0])

    sim_snapshot = run_sim_metrics(schedule, seed=seed)
    net_snapshots, result = run_net_metrics(schedule, run_dir=ARTIFACT_DIR)

    assert result.correct_pids() == [1, 2, 3, 4], result.summary()
    problems = metric_parity_problems(sim_snapshot, net_snapshots, schedule)
    assert problems == [], "\n".join(problems)

    # The compared values themselves are pinned: the killed p5 is outside
    # the initial quorum {1,2,3}, so no quorum change is ever required.
    for pid in (1, 2, 3, 4):
        assert metric_value(sim_snapshot, "qs_quorum_changes_total", pid=pid) == 0
        assert metric_value(sim_snapshot, "qs_epoch", pid=pid) == 1
        assert metric_value(net_snapshots[pid], "qs_quorum_changes_total", pid=pid) == 0
        assert metric_value(net_snapshots[pid], "qs_epoch", pid=pid) == 1

    # Snapshots from both runtimes speak the same schema with the same
    # metric families for the compared names.
    assert sim_snapshot["schema"] == SNAPSHOT_SCHEMA
    for snapshot in net_snapshots.values():
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
    assert set(PARITY_METRIC_NAMES) <= {e["name"] for e in sim_snapshot["metrics"]}

    # The artifact directory CI uploads holds the per-node JSONL streams
    # (metrics events included) and Prometheus exposition files.
    for pid in range(1, schedule.n + 1):
        stream = ARTIFACT_DIR / f"node_{pid}.jsonl"
        assert stream.exists()
        events = [json.loads(line) for line in stream.read_text().splitlines()]
        assert any(e.get("event") == "metrics" for e in events)
        assert (ARTIFACT_DIR / f"node_{pid}.prom").exists()


def test_wire_v2_delivers_the_same_protocol_as_v1(tmp_path):
    """The E27 codec/batching guard on METRIC_PARITY_SCHEDULE.

    The binary codec and batch envelopes change *bytes on sockets*, not
    protocol behaviour: a WIRE_V1 cluster and a WIRE_V2 cluster running
    the same schedule must export identical protocol-logic metrics, and
    total frames delivered must match up to wall-clock scheduling noise
    (the runs are timer-driven, so counts are near-equal, not exact).
    """
    schedule = METRIC_PARITY_SCHEDULE
    v1_snapshots, v1_result = run_net_metrics(
        schedule, run_dir=tmp_path / "v1", wire_version=1
    )
    v2_snapshots, v2_result = run_net_metrics(
        schedule, run_dir=tmp_path / "v2", wire_version=2
    )
    assert v1_result.correct_pids() == v2_result.correct_pids() == [1, 2, 3, 4]

    delivered = {1: 0, 2: 0}
    for pid in (1, 2, 3, 4):
        # Protocol-logic counters: exact equality across codecs.
        for name in PARITY_METRIC_NAMES:
            v1_value = metric_value(v1_snapshots[pid], name, pid=pid)
            v2_value = metric_value(v2_snapshots[pid], name, pid=pid)
            assert v1_value == v2_value, f"{name}{{pid={pid}}}: {v1_value} != {v2_value}"
        # Codec bookkeeping: each run reports the codec it actually ran.
        assert metric_value(v1_snapshots[pid], "net_wire_version", pid=pid) == 1
        assert metric_value(v2_snapshots[pid], "net_wire_version", pid=pid) == 2
        delivered[1] += metric_value(
            v1_snapshots[pid], "peer_frames_received_total", pid=pid
        ) or 0
        delivered[2] += metric_value(
            v2_snapshots[pid], "peer_frames_received_total", pid=pid
        ) or 0

    # Batching loses nothing: the same timer-driven traffic arrives under
    # both codecs (wall-clock noise bounds the ratio, not equality).
    assert delivered[1] > 0 and delivered[2] > 0
    ratio = delivered[2] / delivered[1]
    assert 0.5 < ratio < 2.0, f"frames delivered diverged: {delivered}"
