"""Unit tests for the observability layer itself (registry + spans).

Protocol-independent behaviour: instrument identity, snapshot schema and
determinism, the snapshot algebra (merge/diff), both renderers, the
span sink's bound, and the disabled/NULL_OBS zero-work guarantees that
the hot-path budget rests on.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    NULL_OBS,
    Observability,
    MetricsRegistry,
    SNAPSHOT_SCHEMA,
    SPAN_DETECTION,
    SPAN_FAULT,
    SpanSink,
    diff_snapshots,
    merge_snapshots,
    metric_value,
    render_prometheus,
    render_table,
)


class TestRegistry:
    def test_instruments_are_identified_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("reqs_total", pid=1)
        assert registry.counter("reqs_total", pid=1) is a
        assert registry.counter("reqs_total", pid=2) is not a
        assert registry.gauge("reqs_total_gauge", pid=1) is not a

    def test_counter_gauge_histogram_recording(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(7)
        hist = registry.histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        snapshot = registry.snapshot()
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
        assert metric_value(snapshot, "c") == 5
        assert metric_value(snapshot, "g") == 7
        entry = next(e for e in snapshot["metrics"] if e["name"] == "h")
        assert entry["counts"] == [1, 1, 1] and entry["count"] == 3
        assert entry["sum"] == pytest.approx(55.5)

    def test_snapshot_is_sorted_json_able_and_stable(self):
        registry = MetricsRegistry()
        registry.counter("z_total", pid=2).inc()
        registry.counter("a_total", pid=1).inc()
        registry.counter("z_total", pid=1).inc()
        snapshot = registry.snapshot()
        names = [(e["name"], e["labels"].get("pid")) for e in snapshot["metrics"]]
        assert names == [("a_total", 1), ("z_total", 1), ("z_total", 2)]
        # Round-trips through JSON unchanged (the node JSONL path).
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_collectors_run_at_snapshot_time_only(self):
        registry = MetricsRegistry()
        external = {"count": 0, "calls": 0}

        def collector(reg: MetricsRegistry) -> None:
            external["calls"] += 1
            reg.counter("external_total").set(external["count"])

        registry.add_collector(collector)
        external["count"] = 41
        assert external["calls"] == 0  # nothing happens before a snapshot
        assert metric_value(registry.snapshot(), "external_total") == 41
        external["count"] = 42
        assert metric_value(registry.snapshot(), "external_total") == 42
        assert external["calls"] == 2


class TestSnapshotAlgebra:
    def _snap(self, **counters):
        registry = MetricsRegistry()
        for name, value in counters.items():
            registry.counter(name, pid=1).set(value)
        return registry.snapshot()

    def test_merge_sums_counters_and_unions_families(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("shared_total", kind="x").set(3)
        r2.counter("shared_total", kind="x").set(4)
        r1.counter("only_one_total", pid=1).set(9)
        r1.histogram("lat", buckets=(1.0,)).observe(0.5)
        r2.histogram("lat", buckets=(1.0,)).observe(2.0)
        merged = merge_snapshots([r1.snapshot(), r2.snapshot()])
        assert metric_value(merged, "shared_total", kind="x") == 7
        assert metric_value(merged, "only_one_total", pid=1) == 9
        hist = next(e for e in merged["metrics"] if e["name"] == "lat")
        assert hist["counts"] == [1, 1] and hist["count"] == 2

    def test_diff_subtracts_counters_keeps_gauges(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total")
        gauge = registry.gauge("epoch")
        counter.set(10)
        gauge.set(1)
        before = registry.snapshot()
        counter.set(25)
        gauge.set(3)
        delta = diff_snapshots(before, registry.snapshot())
        assert metric_value(delta, "ops_total") == 15
        assert metric_value(delta, "epoch") == 3

    def test_merge_and_diff_do_not_mutate_inputs(self):
        first, second = self._snap(x_total=1), self._snap(x_total=2)
        frozen = json.dumps([first, second], sort_keys=True)
        merge_snapshots([first, second])
        diff_snapshots(first, second)
        assert json.dumps([first, second], sort_keys=True) == frozen


class TestRenderers:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", help="requests", pid=1).set(5)
        registry.histogram("lat", buckets=(1.0, 2.0), pid=1).observe(1.5)
        return registry.snapshot()

    def test_prometheus_exposition_shape(self):
        text = render_prometheus(self._snapshot())
        assert "# TYPE reqs_total counter" in text
        assert "# HELP reqs_total requests" in text
        assert 'reqs_total{pid="1"} 5' in text
        # Histogram buckets are cumulative and close with +Inf/sum/count.
        assert 'lat_bucket{le="1",pid="1"} 0' in text
        assert 'lat_bucket{le="2",pid="1"} 1' in text
        assert 'lat_bucket{le="+Inf",pid="1"} 1' in text
        assert 'lat_sum{pid="1"} 1.5' in text and 'lat_count{pid="1"} 1' in text
        assert text.endswith("\n")

    def test_table_render_contains_every_family(self):
        text = render_table(self._snapshot())
        assert "reqs_total" in text and "lat" in text and "count=1" in text


class TestSpans:
    def test_sink_is_bounded_and_counts_drops(self):
        sink = SpanSink(max_spans=3)
        for i in range(5):
            sink.record("x", pid=1, start=float(i))
        assert len(sink) == 3 and sink.dropped == 2
        assert [s.start for s in sink.by_name("x")] == [0.0, 1.0, 2.0]

    def test_span_records_are_json_able(self):
        sink = SpanSink()
        sink.record("qs.quorum_change", pid=2, start=1.0, end=2.5, epoch=3)
        (record,) = sink.to_records()
        assert record == {"span": "qs.quorum_change", "pid": 2,
                          "start": 1.0, "end": 2.5, "epoch": 3}
        json.dumps(record)


class TestDetectionLatency:
    def test_fault_to_suspicion_measured_once_per_observer(self):
        obs = Observability()
        obs.fault_injected(5, now=10.0)
        obs.detection_observed(observer=1, target=5, now=13.0)
        obs.detection_observed(observer=1, target=5, now=14.0)  # repeat publish
        obs.detection_observed(observer=2, target=5, now=12.0)
        obs.detection_observed(observer=2, target=4, now=12.0)  # no fault: skip
        snapshot = obs.snapshot()
        one = next(e for e in snapshot["metrics"]
                   if e["name"] == "fd_detection_latency" and e["labels"] == {"pid": 1})
        assert one["count"] == 1 and one["sum"] == pytest.approx(3.0)
        assert one["buckets"] == list(DEFAULT_TIME_BUCKETS)
        spans = obs.spans.by_name(SPAN_DETECTION)
        assert [(s.pid, s.duration) for s in spans] == [(1, 3.0), (2, 2.0)]
        assert len(obs.spans.by_name(SPAN_FAULT)) == 1

    def test_recovery_closes_the_fault_window(self):
        obs = Observability()
        obs.fault_injected(5, now=10.0)
        obs.fault_cleared(5, now=11.0)
        obs.detection_observed(observer=1, target=5, now=13.0)  # stale: no sample
        assert metric_value(obs.snapshot(), "fd_detection_latency", pid=1) is None
        assert not obs.spans.by_name(SPAN_DETECTION)


class TestDisabled:
    def test_disabled_obs_does_no_work(self):
        obs = Observability(enabled=False)
        obs.add_collector(lambda reg: pytest.fail("collector ran while disabled"))
        obs.span("x", pid=1, start=0.0)
        obs.fault_injected(1, now=0.0)
        obs.detection_observed(2, 1, now=1.0)
        snapshot = obs.snapshot()
        assert snapshot["metrics"] == [] and len(obs.spans) == 0

    def test_null_obs_is_a_disabled_singleton(self):
        from repro.obs.observability import get_obs

        assert NULL_OBS.enabled is False
        assert get_obs(object()) is NULL_OBS

        class HostWithObs:
            obs = Observability()

        host = HostWithObs()
        assert get_obs(host) is host.obs
