"""Channel-ordering assumptions: what needs FIFO and what doesn't.

Algorithm 1's eventually-consistent matrix is order-oblivious (max-merge)
— the paper never assumes FIFO for it.  Follower Selection *does* assume
"messages sent between correct processes arrive in FIFO order" (Section
VIII): Lemma 7's well-formedness argument needs a leader's UPDATE
forwards to land before its FOLLOWERS message.  These tests pin both
sides of that line.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quorum_selection import QuorumSelectionModule
from repro.core.spec import agreement_holds, no_suspicion_holds
from repro.fd.detector import FailureDetector
from repro.fd.heartbeat import HeartbeatModule
from repro.graphs.chain_path import is_valid_chain, lex_first_chain
from repro.graphs.suspect_graph import SuspectGraph
from repro.sim.runtime import Simulation, SimulationConfig
from tests.test_graphs_basic import random_graph_strategy


def build_world(fifo: bool, n=5, f=2, seed=11):
    sim = Simulation(SimulationConfig(n=n, seed=seed, fifo=fifo))
    modules = {}
    for pid in sim.pids:
        host = sim.host(pid)
        FailureDetector(host)
        host.add_module(HeartbeatModule(host, n=n, period=2.0))
        modules[pid] = host.add_module(QuorumSelectionModule(host, n=n, f=f))
    return sim, modules


class TestAlgorithm1WithoutFifo:
    def test_crash_convergence_without_fifo(self):
        # Max-merge gossip is delivery-order independent: Algorithm 1
        # converges on non-FIFO channels exactly as on FIFO ones.
        for seed in (3, 7, 11):
            sim, modules = build_world(fifo=False, seed=seed)
            sim.at(10.0, lambda: sim.host(1).crash())
            sim.run_until(150.0)
            correct = [modules[p] for p in (2, 3, 4, 5)]
            assert agreement_holds(correct)
            assert no_suspicion_holds(correct)
            assert correct[0].qlast == frozenset({2, 3, 4})

    def test_matrices_converge_without_fifo(self):
        sim, modules = build_world(fifo=False, seed=5)
        sim.at(10.0, lambda: sim.host(1).crash())
        sim.run_until(150.0)
        matrices = {hash(modules[p].matrix) for p in (2, 3, 4, 5)}
        assert len(matrices) == 1


class TestChainBruteForce:
    """Property check: lex_first_chain matches brute-force enumeration."""

    @settings(max_examples=60, deadline=None)
    @given(random_graph_strategy(max_n=6), st.integers(1, 4))
    def test_matches_brute_force_minimum(self, case, q):
        n, edges = case
        graph = SuspectGraph(n, edges)
        valid = [
            chain
            for chain in itertools.permutations(range(1, n + 1), min(q, n))
            if len(chain) == q and is_valid_chain(chain, graph)
        ]
        result = lex_first_chain(graph, q)
        if q > n or not valid:
            assert result is None or result in valid or q > n
            if q <= n:
                assert result is None
        else:
            assert result == min(valid)

    @settings(max_examples=40, deadline=None)
    @given(random_graph_strategy(max_n=6))
    def test_chain_result_always_valid(self, case):
        n, edges = case
        graph = SuspectGraph(n, edges)
        for q in range(1, n + 1):
            chain = lex_first_chain(graph, q)
            if chain is not None:
                assert is_valid_chain(chain, graph)
