"""Perf smoke tier — seconds-scale hot-path regression checks.

``pytest -m perf_smoke`` runs only these; they also run in the default
tier (they are ordinary tests).  Scales are capped at n=10 so the whole
module stays under a few seconds even on slow shared runners; the full
consortium-scale measurement lives in
``benchmarks/bench_e21_update_hotpath.py`` / ``BENCH_hotpath.json``.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.perf_report import (
    check_invariants,
    find_regressions,
    read_previous_report,
    run_hotpath_case,
)

pytestmark = pytest.mark.perf_smoke

# Generous ceiling: the n=10 case runs in ~0.1s on the baseline machine;
# 5s only trips on a real algorithmic regression (e.g. the incremental
# view silently falling back to per-UPDATE rebuilds).
SMOKE_WALL_CEILING = 5.0


@pytest.mark.parametrize("n,f", [(5, 2), (10, 3)])
def test_hotpath_smoke(n, f):
    started = time.perf_counter()
    row = run_hotpath_case(n, f)
    elapsed = time.perf_counter() - started
    check_invariants(row)
    assert elapsed < SMOKE_WALL_CEILING


class TestRegressionGate:
    """perf_report's >20% wall-time gate against the previous report."""

    OLD = {"cases": [{"n": 5, "f": 2, "wall_seconds": 1.0},
                     {"n": 10, "f": 3, "wall_seconds": 2.0}]}

    def test_within_threshold_passes(self):
        new = [{"n": 5, "f": 2, "wall_seconds": 1.15},
               {"n": 10, "f": 3, "wall_seconds": 1.9}]
        assert find_regressions(self.OLD, new) == []

    def test_regression_flagged_per_case(self):
        new = [{"n": 5, "f": 2, "wall_seconds": 1.5},
               {"n": 10, "f": 3, "wall_seconds": 2.0}]
        flags = find_regressions(self.OLD, new)
        assert len(flags) == 1
        assert "n=5" in flags[0] and "+50%" in flags[0]

    def test_no_previous_report_flags_nothing(self):
        new = [{"n": 5, "f": 2, "wall_seconds": 100.0}]
        assert find_regressions(None, new) == []
        assert find_regressions({}, new) == []

    def test_unknown_or_malformed_cases_ignored(self):
        old = {"cases": [{"n": 5, "f": 2, "wall_seconds": "fast"}, "junk"]}
        new = [{"n": 5, "f": 2, "wall_seconds": 9.0},
               {"n": 99, "f": 9, "wall_seconds": 9.0}]
        assert find_regressions(old, new) == []


class TestCheckedInReportGate:
    """Gate against the *repo's* ``BENCH_hotpath.json``, when present.

    The wall-clock comparison lives in the benchmark runner (machines
    differ); what this tier pins is the **deterministic** column: the
    quorum-change trace digest of the n=5 case must match the checked-in
    report exactly — a cheap, machine-independent regression tripwire.
    On checkouts without a report the gate skips with an explicit reason
    instead of failing or silently passing.
    """

    def test_missing_report_reads_as_none(self, tmp_path):
        assert read_previous_report(tmp_path / "nope.json") is None
        corrupt = tmp_path / "bad.json"
        corrupt.write_text("{not json")
        assert read_previous_report(corrupt) is None

    def test_trace_digest_matches_checked_in_report(self):
        previous = read_previous_report()
        if previous is None:
            pytest.skip(
                "BENCH_hotpath.json not present (fresh checkout) — "
                "generate it with `python benchmarks/perf_report.py` "
                "to arm the regression gate"
            )
        held = next(
            (case for case in previous.get("cases", [])
             if isinstance(case, dict) and case.get("n") == 5),
            None,
        )
        if held is None or "trace_sha256" not in held:
            pytest.skip("checked-in report carries no n=5 trace digest")
        fresh = run_hotpath_case(5, 2)
        assert fresh["trace_sha256"] == held["trace_sha256"], (
            "the n=5 quorum-change trace diverged from BENCH_hotpath.json — "
            "a behaviour change, not just a perf change; regenerate the "
            "report only if the divergence is intended"
        )
