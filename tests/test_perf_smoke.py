"""Perf smoke tier — seconds-scale hot-path regression checks.

``pytest -m perf_smoke`` runs only these; they also run in the default
tier (they are ordinary tests).  Scales are capped at n=10 so the whole
module stays under a few seconds even on slow shared runners; the full
consortium-scale measurement lives in
``benchmarks/bench_e21_update_hotpath.py`` / ``BENCH_hotpath.json``.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.perf_report import check_invariants, run_hotpath_case

pytestmark = pytest.mark.perf_smoke

# Generous ceiling: the n=10 case runs in ~0.1s on the baseline machine;
# 5s only trips on a real algorithmic regression (e.g. the incremental
# view silently falling back to per-UPDATE rebuilds).
SMOKE_WALL_CEILING = 5.0


@pytest.mark.parametrize("n,f", [(5, 2), (10, 3)])
def test_hotpath_smoke(n, f):
    started = time.perf_counter()
    row = run_hotpath_case(n, f)
    elapsed = time.perf_counter() - started
    check_invariants(row)
    assert elapsed < SMOKE_WALL_CEILING
