"""Property tier: algebraic laws of the suspicion-matrix CRDT.

The matrix is a grow-only max-register CRDT (each entry only ever
increases, merge is entry-wise max), which is what makes the gossip
protocol convergent regardless of delivery order, duplication, or
partial exchange.  These tests check the algebraic laws that convergence
rests on — commutativity, associativity, idempotence, monotonicity —
over randomized matrices, plus the equivalence of the incrementally
maintained suspect-graph view with a from-scratch rebuild under random
interleavings of ``mark``/``merge_row``.

Seeds come from ``REPRO_PROP_SEEDS`` (comma-separated ints, default
``3,7,11``) so CI can pin a matrix of fixed seeds; all randomness flows
through :mod:`repro.util.rand` — no new dependencies, fully
reproducible.
"""

from __future__ import annotations

import os

import pytest

from repro.core.suspicion_matrix import SuspicionMatrix
from repro.util.rand import DeterministicRng, make_rng

pytestmark = pytest.mark.props

N = 6
MAX_EPOCH = 9


def _prop_seeds():
    raw = os.environ.get("REPRO_PROP_SEEDS", "3,7,11")
    return [int(chunk) for chunk in raw.split(",") if chunk.strip()]


SEEDS = _prop_seeds()


def random_matrix(rng: DeterministicRng, n: int = N, density: float = 0.5) -> SuspicionMatrix:
    matrix = SuspicionMatrix(n)
    for suspector in range(1, n + 1):
        for suspectee in range(1, n + 1):
            if suspector != suspectee and rng.random() < density:
                matrix.mark(suspector, suspectee, rng.randint(1, MAX_EPOCH))
    return matrix


def merged(a: SuspicionMatrix, b: SuspicionMatrix) -> SuspicionMatrix:
    """``a`` joined with ``b`` via the wire-level row merge (pure)."""
    result = a.copy()
    for suspector in range(1, a.n + 1):
        result.merge_row(suspector, b.row(suspector))
    return result


@pytest.mark.parametrize("seed", SEEDS)
class TestMergeLaws:
    def test_commutative(self, seed):
        rng = make_rng(seed).child("commutative")
        for trial in range(20):
            a = random_matrix(rng.child(trial, "a"))
            b = random_matrix(rng.child(trial, "b"))
            assert merged(a, b) == merged(b, a)

    def test_associative(self, seed):
        rng = make_rng(seed).child("associative")
        for trial in range(20):
            a = random_matrix(rng.child(trial, "a"))
            b = random_matrix(rng.child(trial, "b"))
            c = random_matrix(rng.child(trial, "c"))
            assert merged(merged(a, b), c) == merged(a, merged(b, c))

    def test_idempotent(self, seed):
        rng = make_rng(seed).child("idempotent")
        for trial in range(20):
            a = random_matrix(rng.child(trial))
            assert merged(a, a) == a
            # Re-merging a peer's state a second time is also a no-op.
            b = random_matrix(rng.child(trial, "peer"))
            once = merged(a, b)
            assert merged(once, b) == once

    def test_monotone_pointwise_max(self, seed):
        rng = make_rng(seed).child("monotone")
        for trial in range(20):
            a = random_matrix(rng.child(trial, "a"))
            b = random_matrix(rng.child(trial, "b"))
            joined = merged(a, b)
            for i in range(1, N + 1):
                for j in range(1, N + 1):
                    if i == j:
                        continue
                    assert joined.get(i, j) == max(a.get(i, j), b.get(i, j))
                    assert joined.get(i, j) >= a.get(i, j)  # never loses knowledge


@pytest.mark.parametrize("seed", SEEDS)
def test_incremental_view_equals_rebuild(seed):
    """The edge-by-edge maintained graph always equals a fresh build.

    Random interleaving of direct marks, row merges (including 1-based
    wire-format rows and Byzantine garbage), and tracked-epoch switches;
    after every step the live view must be graph-equal to
    ``build_suspect_graph`` on the same ``(epoch, slack)``.
    """
    rng = make_rng(seed).child("incremental")
    matrix = SuspicionMatrix(N)
    epoch, slack = 1, None
    matrix.suspect_graph_view(epoch, slack)  # start incremental tracking
    for step in range(200):
        step_rng = rng.child(step)
        op = step_rng.randint(0, 9)
        if op <= 4:
            suspector = step_rng.randint(1, N)
            suspectee = step_rng.randint(1, N)
            if suspector != suspectee:
                matrix.mark(suspector, suspectee, step_rng.randint(1, MAX_EPOCH))
        elif op <= 7:
            suspector = step_rng.randint(1, N)
            row = [step_rng.randint(0, MAX_EPOCH) for _ in range(N)]
            row[suspector - 1] = 0
            if step_rng.coin(0.5):
                row = [step_rng.randint(0, MAX_EPOCH), *row]  # 1-based wire form
            matrix.merge_row(suspector, row)
        elif op == 8:
            # Byzantine garbage rows must neither crash nor corrupt.
            matrix.merge_row(step_rng.randint(1, N),
                             [True, "x", -3, None, 2 ** 40, 1.5][:N])
        else:
            epoch = step_rng.randint(1, MAX_EPOCH)
            slack = None if step_rng.coin(0.5) else step_rng.randint(0, 3)
        view = matrix.suspect_graph_view(epoch, slack)
        assert view == matrix.build_suspect_graph(epoch, slack), (
            f"seed={seed} step={step}: incremental view diverged at "
            f"epoch={epoch} slack={slack}"
        )
    # The interleaving must have exercised the incremental path, not
    # just rebuilt on every call (vacuousness guard).
    assert matrix.graph_reuses > 0 and matrix.incremental_edge_updates > 0


@pytest.mark.parametrize("seed", SEEDS)
class TestAdversaryForgedRows:
    """E28 hardening: engine-forged garbage rows against a bare matrix.

    ``forge_garbage_rows`` is the exact generator the adversary engine's
    ``ForgedSuspicionStrategy`` broadcasts; the matrix must drop every
    malformed entry silently while the mixed-in valid rows still merge
    monotonically.
    """

    def test_garbage_rows_leave_matrix_unchanged(self, seed):
        from repro.adversary.strategies import forge_garbage_rows

        rng = make_rng(seed).child("forged")
        matrix = random_matrix(rng.child("base"))
        before = matrix.copy()
        valid_arities = {N, N + 1}
        for index, row in enumerate(
            forge_garbage_rows(rng.child("rows"), N, 40)
        ):
            suspector = 1 + index % N
            matrix.merge_row(suspector, row)
            if len(row) not in valid_arities or not all(
                type(value) is int and value >= 0 for value in row
            ):
                # Fully malformed rows must be complete no-ops.
                continue
        # Garbage can only have grown entries via valid-shaped all-int
        # rows; every surviving entry still dominates the original.
        for suspector in range(1, N + 1):
            for suspectee in range(1, N + 1):
                assert matrix.get(suspector, suspectee) >= \
                    before.get(suspector, suspectee)

    def test_per_entry_filtering_matches_spec(self, seed):
        """Merging forged rows applies exactly the documented filter:
        wrong-arity rows are whole-row no-ops; within a valid-arity row
        only genuine-int entries above the current value land, never the
        diagonal or the 1-based padding slot."""
        from repro.adversary.strategies import forge_garbage_rows

        rng = make_rng(seed).child("per-entry")
        matrix = random_matrix(rng.child("base"))
        expected = {
            (suspector, suspectee): matrix.get(suspector, suspectee)
            for suspector in range(1, N + 1)
            for suspectee in range(1, N + 1)
        }
        for index, row in enumerate(forge_garbage_rows(rng.child("rows"), N, 60)):
            suspector = 1 + index % N
            matrix.merge_row(suspector, row)
            if len(row) == N:
                dense = (0, *row)
            elif len(row) == N + 1:
                dense = tuple(row)
            else:
                continue  # wrong arity: whole row ignored
            for suspectee in range(1, N + 1):
                value = dense[suspectee]
                if suspectee != suspector and type(value) is int:
                    key = (suspector, suspectee)
                    expected[key] = max(expected[key], value)
        for (suspector, suspectee), value in expected.items():
            assert matrix.get(suspector, suspectee) == value

    def test_incremental_view_survives_forged_rows(self, seed):
        from repro.adversary.strategies import forge_garbage_rows

        rng = make_rng(seed).child("forged-view")
        matrix = SuspicionMatrix(N)
        matrix.suspect_graph_view(1, None)
        rows = forge_garbage_rows(rng.child("rows"), N, 30)
        for step, row in enumerate(rows):
            step_rng = rng.child("step", step)
            if step_rng.coin(0.5):
                matrix.mark(step_rng.randint(1, N - 1) + 1, 1,
                            step_rng.randint(1, MAX_EPOCH))
            matrix.merge_row(1 + step % N, row)
            assert matrix.suspect_graph_view(1, None) == \
                matrix.build_suspect_graph(1, None)
