"""Property tier: statistical laws of the consistent-hash ring.

Two laws the sharded deployment (DESIGN.md §5.19) rests on:

- **balance** — with ``DEFAULT_VNODES`` arcs per shard, every shard's
  share of a large key population stays within a constant factor of
  fair (vnode placement is SHA-256-pseudo-random, so relative spread
  shrinks like ``1/sqrt(vnodes)``; the asserted envelope is generous
  enough to hold for any seed, not just the pinned ones);
- **minimal remapping** — growing ``M -> M+1`` under the same seed
  moves *only* keys claimed by the new shard (exact, not statistical),
  and the moved fraction lands near the ideal ``1/(M+1)``.

Seeds come from ``REPRO_PROP_SEEDS`` (comma-separated ints, default
``3,7,11``), matching the rest of the props tier.
"""

from __future__ import annotations

import os

import pytest

from repro.shard.ring import HashRing

pytestmark = pytest.mark.props


def _prop_seeds():
    raw = os.environ.get("REPRO_PROP_SEEDS", "3,7,11")
    return [int(chunk) for chunk in raw.split(",") if chunk.strip()]


SEEDS = _prop_seeds()
KEYS = [f"key-{i}" for i in range(1000)]

#: Per-shard load envelope as a multiple of fair share.  Empirically the
#: worst spread over many seeds at M <= 8 with 128 vnodes is ~[0.74,
#: 1.31]; the envelope leaves headroom so arbitrary CI seeds pass.
BALANCE_LO, BALANCE_HI = 0.55, 1.45


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shards", [2, 3, 4, 8])
class TestBalance:
    def test_every_shard_within_the_envelope(self, seed, shards):
        ring = HashRing(shards, seed=seed)
        dist = ring.distribution(KEYS)
        fair = len(KEYS) / shards
        assert len(dist) == shards
        for shard, count in dist.items():
            assert BALANCE_LO * fair <= count <= BALANCE_HI * fair, (
                f"shard {shard} owns {count} of {len(KEYS)} keys "
                f"(fair {fair:.0f}) at seed={seed} M={shards}"
            )

    def test_distribution_is_a_partition(self, seed, shards):
        ring = HashRing(shards, seed=seed)
        dist = ring.distribution(KEYS)
        assert sum(dist.values()) == len(KEYS)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shards", [1, 2, 3, 4])
class TestMinimalRemapping:
    def test_growth_moves_keys_only_onto_the_new_shard(self, seed, shards):
        old = HashRing(shards, seed=seed)
        new = HashRing(shards + 1, seed=seed)
        moved = old.remapped(new, KEYS)
        # Exact law: a key's ring position never changes and old arcs
        # only ever get *split* by new-shard vnodes, so every remapped
        # key must now belong to the new shard — none migrate between
        # surviving shards.
        assert all(new.shard_of(key) == shards for key in moved)
        # Unmoved keys keep their owner (remapped() is the full delta).
        unmoved = set(KEYS) - set(moved)
        assert all(old.shard_of(key) == new.shard_of(key) for key in unmoved)

    def test_moved_fraction_is_near_the_ideal(self, seed, shards):
        old = HashRing(shards, seed=seed)
        new = HashRing(shards + 1, seed=seed)
        fraction = len(old.remapped(new, KEYS)) / len(KEYS)
        ideal = 1.0 / (shards + 1)
        assert 0.4 * ideal <= fraction <= 2.0 * ideal, (
            f"moved {fraction:.3f}, ideal {ideal:.3f} "
            f"at seed={seed} M={shards}"
        )
