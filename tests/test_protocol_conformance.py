"""Backend conformance battery: every ProtocolBackend honours the contract.

One parametrized suite, run against each registered backend through the
shared :func:`~repro.protocol.system.build_backend_system` harness.  The
contract under test is the quorum-consumption side of the paper's
interface: replicas execute client operations safely, adopt exactly the
quorums Quorum Selection issues, re-stabilize after losing their leader,
survive crash/recovery churn, and converge under chaotic networks —
independent of whether the decision engine is XPaxos's view-change
pipeline or IBFT's three-phase rounds.
"""

import pytest

from repro.net.parity import thm3_bound
from repro.protocol.backend import backend_names
from repro.protocol.system import build_backend_system
from repro.sim.network import ChaosConfig

PROTOCOLS = sorted(backend_names())


@pytest.fixture(params=PROTOCOLS)
def protocol(request):
    return request.param


def assert_quorum_adoption_matches_qs(system):
    """Every correct replica runs exactly the quorum its QS module issued."""
    faulty = system.adversary.faulty if system.adversary else set()
    for pid in system.replica_pids:
        if pid in faulty or not system.sim.host(pid).running:
            continue
        status = system.observe(pid)
        assert status.quorum == frozenset(system.qs_modules[pid].current_quorum), (
            f"{status.protocol} p{pid}: replica quorum {sorted(status.quorum)} "
            f"!= QS {sorted(system.qs_modules[pid].current_quorum)}"
        )


def assert_thm3_envelope(system):
    faulty = system.adversary.faulty if system.adversary else set()
    bound = thm3_bound(system.f)
    for pid, qs in system.qs_modules.items():
        if pid in faulty:
            continue
        assert qs.max_quorums_in_any_epoch() <= bound


class TestAgreementSafety:
    def test_fault_free_run_completes_and_agrees(self, protocol):
        system = build_backend_system(protocol, n=4, f=1, clients=2, seed=3)
        system.run(600.0)

        assert system.total_completed() == 40
        assert system.histories_consistent()
        # Fault-free: every replica executed the full history, normally.
        for pid in system.replica_pids:
            status = system.observe(pid)
            assert status.status == "normal"
            assert status.executed == status.commits
        executed = {system.observe(pid).executed for pid in system.replica_pids
                    if pid in system.observe(pid).quorum}
        assert executed == {40}
        assert_quorum_adoption_matches_qs(system)

    def test_observe_reports_the_backend_contract(self, protocol):
        system = build_backend_system(protocol, n=4, f=1, clients=1, seed=3)
        system.run(300.0)
        status = system.observe(1)
        assert status.protocol == protocol == system.backend.name
        assert system.backend.decision_term in ("view", "round")
        assert status.decision_number >= 0
        assert len(status.quorum) == system.n - system.f
        assert status.leader == min(status.quorum)


class TestQuorumAdoption:
    def test_replicas_follow_qs_after_quorum_member_dies(self, protocol):
        system = build_backend_system(protocol, n=5, f=2, clients=1, seed=3)
        victim = min(system.replicas[1].policy.quorum_of(0))
        system.adversary.crash(victim, at=60.0)
        system.run(900.0)

        assert system.total_completed() == 20
        assert system.histories_consistent()
        for pid in system.replica_pids:
            if pid == victim:
                continue
            assert victim not in system.observe(pid).quorum
        assert_quorum_adoption_matches_qs(system)
        assert_thm3_envelope(system)


class TestLeaderKillRestabilization:
    def test_workload_survives_leader_kill(self, protocol):
        system = build_backend_system(protocol, n=4, f=1, clients=2, seed=7)
        leader = min(system.replicas[1].policy.quorum_of(0))
        system.adversary.crash(leader, at=40.0)
        system.run(900.0)

        assert system.total_completed() == 40
        assert system.histories_consistent()
        for pid in system.replica_pids:
            if pid == leader:
                continue
            status = system.observe(pid)
            assert leader not in status.quorum
            if pid in status.quorum:
                assert status.status == "normal"
                assert status.decision_number > 0
        assert_thm3_envelope(system)


class TestCrashRecovery:
    def test_killed_leader_recovering_keeps_safety_and_liveness(self, protocol):
        system = build_backend_system(protocol, n=4, f=1, clients=2, seed=11)
        leader = min(system.replicas[1].policy.quorum_of(0))
        system.adversary.crash(leader, at=40.0)
        system.sim.at(
            200.0,
            lambda: system.sim.host(leader).recover(),
            label=f"recover-p{leader}",
        )
        system.run(900.0)

        assert system.sim.host(leader).running
        assert system.total_completed() == 40
        assert system.histories_consistent()
        assert_thm3_envelope(system)

    def test_non_quorum_member_churn_changes_nothing(self, protocol):
        """Killing and recovering a spare never forces a quorum change."""
        system = build_backend_system(protocol, n=5, f=2, clients=1, seed=3)
        spare = max(system.replica_pids)
        assert spare not in system.replicas[1].policy.quorum_of(0)
        system.adversary.crash(spare, at=40.0)
        system.sim.at(
            100.0, lambda: system.sim.host(spare).recover(),
            label=f"recover-p{spare}",
        )
        system.run(600.0)

        assert system.total_completed() == 20
        for pid in system.replica_pids:
            status = system.observe(pid)
            assert status.status == "normal"
            assert status.decision_number == 0
        for qs in system.qs_modules.values():
            assert qs.total_quorums_issued() == 0
        assert_quorum_adoption_matches_qs(system)


class TestChaosConvergence:
    def test_lossy_network_converges_safely(self, protocol):
        """Chaos may cost liveness windows and false suspicions — never safety."""
        system = build_backend_system(
            protocol, n=4, f=1, clients=1, seed=3,
            chaos=ChaosConfig(drop=0.02, duplicate=0.02, reorder=0.05),
            client_retry=20.0,
        )
        system.run(900.0)

        assert system.histories_consistent()
        assert system.total_completed() > 0
        # No Theorem 3 claim here: random loss falsely implicates correct
        # processes, voiding the <=f-faults premise.  What must survive
        # chaos is safety plus the adoption contract.
        assert_quorum_adoption_matches_qs(system)
