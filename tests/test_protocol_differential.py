"""Differential backend testing: one schedule, two protocols, one QS story.

Quorum Selection is the shared substrate; the backends only *consume*
it.  Running the identical seeded schedule through XPaxos and IBFT must
therefore end in the same Quorum Selection state — same final epoch,
same final quorum — and export truthful, matching metrics, even though
the protocols exchange entirely different message sets along the way.

The metric-parity leg mirrors ``tests/test_obs_parity.py``: on the
canonical schedule that kills a non-quorum member, the protocol-logic
metrics (``qs_quorum_changes_total``, ``qs_epoch``) are *pinned* — zero
changes, epoch 1 — and must agree exactly across backends.  On a
leader-kill schedule the change counter is timing-dependent (each
backend's traffic perturbs FD expectation timing differently), so there
the cross-backend claim is the final state plus the Theorem 3 envelope,
with each backend's counter still exactly equal to its module state.
"""

import pytest

from repro.net.parity import thm3_bound
from repro.obs.registry import metric_value
from repro.protocol.system import build_backend_system

PROTOCOLS = ("xpaxos", "ibft")
SEEDS = (3, 7, 11)


def run_leader_kill(protocol, seed, n=5, f=2, kill_at=60.0, horizon=900.0):
    system = build_backend_system(protocol, n=n, f=f, clients=1, seed=seed)
    leader = min(system.replicas[1].policy.quorum_of(0))
    system.adversary.crash(leader, at=kill_at)
    system.run(horizon)
    return system, leader


def run_spare_kill(protocol, seed, n=5, f=2, kill_at=5.0, horizon=60.0):
    """The obs-parity schedule: the victim is outside the initial quorum."""
    system = build_backend_system(protocol, n=n, f=f, clients=1, seed=seed)
    spare = max(system.replica_pids)
    assert spare not in system.replicas[1].policy.quorum_of(0)
    system.adversary.crash(spare, at=kill_at)
    system.run(horizon)
    return system, spare


def qs_final_state(system, exclude=()):
    return {
        pid: (qs.epoch, tuple(sorted(qs.current_quorum)))
        for pid, qs in system.qs_modules.items()
        if pid not in exclude
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_same_schedule_same_final_qs_state(seed):
    """Identical seeded leader-kill runs end in identical QS conclusions."""
    finals = {}
    histories = {}
    for protocol in PROTOCOLS:
        system, leader = run_leader_kill(protocol, seed)
        assert system.total_completed() == 20
        assert system.histories_consistent()
        finals[protocol] = qs_final_state(system, exclude=(leader,))
        longest = max(
            (r.executed for r in system.replicas.values() if r.pid != leader),
            key=len,
        )
        histories[protocol] = tuple(request.canonical() for request in longest)
        for pid, (epoch, quorum) in finals[protocol].items():
            assert leader not in quorum
            assert system.qs_modules[pid].max_quorums_in_any_epoch() \
                <= thm3_bound(system.f)

    assert finals["xpaxos"] == finals["ibft"], (
        f"seed={seed}: backends diverged on the shared QS module"
    )
    # The committed history is protocol-independent too: one client,
    # sequential ops — both engines execute the same requests in order.
    assert histories["xpaxos"] == histories["ibft"]


@pytest.mark.parametrize("seed", SEEDS)
def test_metric_parity_on_pinned_schedule(seed):
    """Killing a spare pins the parity metrics: 0 changes, epoch 1 — both."""
    snapshots = {}
    for protocol in PROTOCOLS:
        system, spare = run_spare_kill(protocol, seed)
        per_pid = {}
        for pid in system.replica_pids:
            if pid == spare:
                continue
            snapshot = system.sim.host(pid).obs.snapshot()
            changes = metric_value(snapshot, "qs_quorum_changes_total", pid=pid)
            epoch = metric_value(snapshot, "qs_epoch", pid=pid)
            assert changes == 0, f"{protocol} p{pid}: unforced quorum change"
            assert epoch == 1
            per_pid[pid] = (changes, epoch)
        snapshots[protocol] = per_pid
    assert snapshots["xpaxos"] == snapshots["ibft"]


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_metrics_are_truthful_per_backend(protocol):
    """The exported counters equal the module state they narrate."""
    system, leader = run_leader_kill(protocol, seed=3)
    for pid, qs in system.qs_modules.items():
        if pid == leader:
            continue
        snapshot = system.sim.host(pid).obs.snapshot()
        assert metric_value(snapshot, "qs_quorum_changes_total", pid=pid) \
            == qs.total_quorums_issued()
        assert metric_value(snapshot, "qs_epoch", pid=pid) == qs.epoch
