"""Regression guard: world/config assembly is backend-neutral (satellite 4).

``attach_kv_service_stack`` / ``build_kv_service_world`` used to
hard-import the XPaxos replica; they now resolve the replica layer
through the :class:`~repro.protocol.backend.ProtocolBackend` registry.
These tests pin that down: every registered backend assembles and runs
through the shared service-world path, and an unknown protocol name is
rejected with :class:`ConfigurationError` at every entry point a user
can reach (registry, sim builders, node config, cluster config).
"""

import pytest

from repro.net.cluster import ClusterConfig
from repro.net.node import NodeConfig
from repro.protocol.backend import backend_names, get_backend
from repro.protocol.system import build_backend_system
from repro.service.loadgen import run_sim_load
from repro.sim.worlds import build_kv_service_world
from repro.util.errors import ConfigurationError

PROTOCOLS = sorted(backend_names())


@pytest.fixture(params=PROTOCOLS)
def protocol(request):
    return request.param


class TestWorldsBuildWithEitherBackend:
    def test_service_world_mounts_the_named_backend(self, protocol):
        world = build_kv_service_world(n=4, f=1, clients=1, seed=3,
                                       protocol=protocol)
        assert world.protocol == protocol
        world.sim.run_until(60.0)
        backend = get_backend(protocol)
        for pid, replica in world.replicas.items():
            status = backend.observe(replica)
            assert status.protocol == protocol
            assert status.status == "normal"
            assert status.quorum == frozenset(world.qs_modules[pid].current_quorum)

    def test_sim_loadgen_completes_under_either_backend(self, protocol):
        report = run_sim_load(n=4, f=1, clients=2, duration=40.0, seed=3,
                              protocol=protocol)
        assert report["protocol"] == protocol
        assert report["completed"] == report["offered"] > 0
        assert report["at_most_once"]
        assert report["digests_agree"]

    def test_backend_system_builds_for_every_registered_name(self, protocol):
        system = build_backend_system(protocol, n=4, f=1, clients=1, seed=3)
        assert system.backend.name == protocol
        system.run(120.0)
        assert system.total_completed() > 0


class TestUnknownProtocolIsRejectedEverywhere:
    def test_registry_rejects_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_backend("nope")

    def test_service_world_rejects_unknown_name(self):
        with pytest.raises(ConfigurationError):
            build_kv_service_world(n=4, f=1, clients=1, protocol="nope")

    def test_backend_system_rejects_unknown_name(self):
        with pytest.raises(ConfigurationError):
            build_backend_system("nope", n=4, f=1)

    def test_node_config_rejects_unknown_name(self):
        config = NodeConfig(pid=1, n=4, f=1, service="kv", protocol="nope")
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_cluster_config_rejects_unknown_name(self):
        config = ClusterConfig(n=4, f=1, service="kv", protocol="nope")
        with pytest.raises(ConfigurationError):
            config.validate()
