"""The n = 3f+1 configuration: QS-maintained active quorum (E19 logic)."""

from repro.xpaxos.messages import KIND_COMMIT
from repro.xpaxos.system import build_system


class TestThreeFPlusOne:
    def test_fault_free_runs_in_default_quorum(self):
        system = build_system(n=7, f=2, mode="selection", clients=2, seed=7)
        system.run(500.0)
        assert system.total_completed() == 40
        assert all(r.view_changes == 0 for r in system.replicas.values())
        # Only the five active members executed anything.
        for pid in (6, 7):
            assert len(system.replicas[pid].executed) == 0

    def test_crash_moves_quorum(self):
        system = build_system(n=7, f=2, mode="selection", clients=1, seed=9,
                              client_think_time=4.0)
        system.adversary.crash(1, at=30.0)
        system.run(1000.0)
        assert system.total_completed() == 20
        assert system.histories_consistent()
        assert 1 not in system.correct_replicas()[0].quorum

    def test_per_link_omission_splits_pair(self):
        system = build_system(n=7, f=2, mode="selection", clients=1, seed=9,
                              client_think_time=4.0)
        system.adversary.omit_links(3, dsts={5}, kinds={KIND_COMMIT}, start=30.0)
        system.run(1200.0)
        assert system.total_completed() == 20
        final = system.correct_replicas()[0].quorum
        assert not {3, 5} <= final

    def test_two_faults_tolerated(self):
        system = build_system(n=7, f=2, mode="selection", clients=1, seed=11,
                              client_think_time=4.0)
        system.adversary.crash(1, at=30.0)
        system.adversary.crash(2, at=45.0)
        system.run(1200.0)
        assert system.total_completed() == 20
        assert system.histories_consistent()
        final = system.correct_replicas()[0].quorum
        assert not {1, 2} & final

    def test_messages_below_pbft_full_broadcast(self):
        system = build_system(n=7, f=2, mode="selection", clients=1, seed=7,
                              client_ops=[[("put", f"k{i}", i) for i in range(10)]])
        system.run(400.0)
        messages = system.sim.stats.total_sent(["xp.prepare", "xp.commit"])
        # Active-quorum two-phase: (q-1) + (q-1)^2 = 4 + 16 = 20 per request
        # vs PBFT full broadcast's 84 at n=7.
        assert messages / 10 == 20.0
