"""Unit tests for the service client library (request ids, retry, redirect).

A fake host records sends and timers so the client's wire behaviour is
checked without a simulator: retry backoff doubling, the single live
retry timer, the f+1 matching-vote rule, and redirect-to-leader learned
from reply views.
"""

from repro.crypto.authenticator import Authenticator
from repro.crypto.keys import KeyRegistry
from repro.service.client import ServiceClient
from repro.xpaxos.enumeration import leader_of_view
from repro.xpaxos.messages import KIND_REPLY, KIND_REQUEST, ReplyPayload

N, F = 4, 1
CLIENT_PID = 6
REGISTRY = KeyRegistry(8)


class FakeTimer:
    def __init__(self, delay, fn, label):
        self.delay = delay
        self.fn = fn
        self.label = label
        self.cancelled = False

    def cancel(self):
        self.cancelled = True

    def fire(self):
        if not self.cancelled:
            self.fn()


class FakeLog:
    def append(self, *args, **kwargs):
        pass


class FakeHost:
    def __init__(self, pid=CLIENT_PID):
        self.pid = pid
        self.now = 0.0
        self.sent = []
        self.timers = []
        self.log = FakeLog()
        self.authenticator = Authenticator(REGISTRY, pid)

    def set_timer(self, delay, fn, label=None):
        timer = FakeTimer(delay, fn, label)
        self.timers.append(timer)
        return timer

    def send(self, dst, kind, payload):
        self.sent.append((dst, kind, payload))

    def subscribe(self, kind, fn):
        pass

    def live_timers(self):
        return [t for t in self.timers if not t.cancelled]


def make_client(host, **kwargs):
    kwargs.setdefault("retry_timeout", 1.0)
    client = ServiceClient(host, n=N, f=F, **kwargs)
    client.start()
    return client


def reply_from(replica, client, sequence, result, view=0, signer=None):
    body = ReplyPayload(
        client=client, sequence=sequence, result=result,
        replica=replica, view=view,
    )
    return Authenticator(REGISTRY, signer if signer is not None else replica).sign(body)


class TestDispatchAndRetry:
    def test_first_send_goes_to_believed_leader_only(self):
        host = FakeHost()
        client = make_client(host)
        client.submit(("put", "a", 1))
        leader = leader_of_view(0, N, N - F)
        assert [entry[0] for entry in host.sent] == [leader]
        assert host.sent[0][1] == KIND_REQUEST

    def test_retry_broadcasts_with_exponential_backoff(self):
        host = FakeHost()
        client = make_client(host, retry_timeout=1.0, backoff=2.0,
                             max_retry_timeout=3.0)
        client.submit(("put", "a", 1))
        host.sent.clear()

        (timer,) = host.live_timers()
        assert timer.delay == 1.0
        timer.fire()
        assert [entry[0] for entry in host.sent] == [1, 2, 3, 4]
        assert client.retries == 1

        # Backoff doubles, capped at max_retry_timeout.
        (timer,) = host.live_timers()
        assert timer.delay == 2.0
        timer.fire()
        (timer,) = host.live_timers()
        assert timer.delay == 3.0

    def test_exactly_one_live_retry_timer(self):
        # Regression: re-arming must cancel the previous timer, not
        # accumulate a chain of stale ones.
        host = FakeHost()
        client = make_client(host)
        client.submit(("put", "a", 1))
        for _ in range(4):
            (timer,) = host.live_timers()
            timer.fire()
        assert len(host.live_timers()) == 1

    def test_completion_cancels_the_retry_timer(self):
        host = FakeHost()
        client = make_client(host)
        client.submit(("put", "a", 1))
        for replica in (1, 2):
            client.on_reply(KIND_REPLY, reply_from(replica, CLIENT_PID, 0, None), replica)
        assert client.current is None
        assert host.live_timers() == []

    def test_first_retry_goes_leader_first_once_a_leader_is_learned(self):
        # A client that has seen real replies knows who leads; its first
        # retry re-targets that leader alone, and only the second retry
        # escalates to the full n-fold broadcast.
        host = FakeHost()
        client = make_client(host, retry_timeout=1.0)
        client.submit(("put", "a", 1))
        for replica in (1, 2):
            client.on_reply(
                KIND_REPLY, reply_from(replica, CLIENT_PID, 0, None, view=1), replica
            )
        assert client.believed_view == 1

        client.submit(("get", "a"))
        host.sent.clear()
        (timer,) = host.live_timers()
        timer.fire()
        leader = leader_of_view(1, N, N - F)
        assert [entry[0] for entry in host.sent] == [leader]

        host.sent.clear()
        (timer,) = host.live_timers()
        timer.fire()
        assert [entry[0] for entry in host.sent] == [1, 2, 3, 4]

    def test_completion_records_are_named(self):
        host = FakeHost()
        client = make_client(host)
        client.submit(("put", "a", 1))
        for replica in (1, 2):
            client.on_reply(KIND_REPLY, reply_from(replica, CLIENT_PID, 0, "ok"), replica)
        (entry,) = client.completed
        assert entry.sequence == 0
        assert entry.op == ("put", "a", 1)
        assert entry.result == "ok"
        assert entry.view == 0
        # Positional layout preserved for historical consumers.
        assert tuple(entry) == (
            entry.sequence, entry.op, entry.result,
            entry.latency, entry.completed_at, entry.view,
        )

    def test_stale_retry_closure_is_a_no_op(self):
        host = FakeHost()
        client = make_client(host)
        client.submit(("put", "a", 1))
        (stale,) = host.live_timers()
        for replica in (1, 2):
            client.on_reply(KIND_REPLY, reply_from(replica, CLIENT_PID, 0, None), replica)
        client.submit(("get", "a"))
        host.sent.clear()
        stale.cancelled = False  # even if it somehow fired anyway
        stale.fn()
        assert host.sent == []  # sequence mismatch: no spurious broadcast
        assert client.retries == 0


class TestVoting:
    def test_needs_f_plus_one_matching_votes(self):
        host = FakeHost()
        client = make_client(host)
        client.submit(("get", "a"))
        client.on_reply(KIND_REPLY, reply_from(1, CLIENT_PID, 0, "v"), 1)
        assert client.current is not None
        # A second vote for a *different* result does not pool.
        client.on_reply(KIND_REPLY, reply_from(2, CLIENT_PID, 0, "forged"), 2)
        assert client.current is not None
        client.on_reply(KIND_REPLY, reply_from(3, CLIENT_PID, 0, "v"), 3)
        assert client.current is None
        assert client.completed[0][2] == "v"

    def test_duplicate_votes_from_one_replica_do_not_count_twice(self):
        host = FakeHost()
        client = make_client(host)
        client.submit(("get", "a"))
        for _ in range(3):
            client.on_reply(KIND_REPLY, reply_from(1, CLIENT_PID, 0, "v"), 1)
        assert client.current is not None

    def test_reply_with_mismatched_signer_is_ignored(self):
        host = FakeHost()
        client = make_client(host)
        client.submit(("get", "a"))
        forged = reply_from(1, CLIENT_PID, 0, "v", signer=2)
        client.on_reply(KIND_REPLY, forged, 2)
        client.on_reply(KIND_REPLY, reply_from(3, CLIENT_PID, 0, "v"), 3)
        assert client.current is not None  # the forged vote did not pool

    def test_reply_for_old_sequence_is_ignored(self):
        host = FakeHost()
        client = make_client(host)
        client.submit(("put", "a", 1))
        for replica in (1, 2):
            client.on_reply(KIND_REPLY, reply_from(replica, CLIENT_PID, 0, None), replica)
        client.submit(("get", "a"))
        client.on_reply(KIND_REPLY, reply_from(3, CLIENT_PID, 0, None), 3)
        client.on_reply(KIND_REPLY, reply_from(4, CLIENT_PID, 0, None), 4)
        assert client.current is not None
        assert client.current.sequence == 1


class TestRedirect:
    def test_learns_view_from_replies_and_redirects(self):
        host = FakeHost()
        client = make_client(host)
        client.submit(("put", "a", 1))
        view = 2
        for replica in (1, 2):
            client.on_reply(
                KIND_REPLY, reply_from(replica, CLIENT_PID, 0, None, view=view), replica
            )
        assert client.believed_view == view
        host.sent.clear()
        client.submit(("get", "a"))
        assert [entry[0] for entry in host.sent] == [leader_of_view(view, N, N - F)]

    def test_view_never_goes_backwards(self):
        host = FakeHost()
        client = make_client(host)
        client.believed_view = 5
        client.submit(("get", "a"))
        for replica in (1, 2):
            client.on_reply(
                KIND_REPLY, reply_from(replica, CLIENT_PID, 0, None, view=1), replica
            )
        assert client.believed_view == 5


class TestQueueing:
    def test_callback_submitting_keeps_fifo_order(self):
        # Regression: the next request must dispatch *before* the
        # completion callback runs, so a callback that submits (the
        # closed-loop feeder) enqueues behind it instead of racing.
        host = FakeHost()
        client = make_client(host)
        order = []

        def feeder(op, result, latency):
            order.append(op)
            if len(order) < 3:
                client.submit(("put", "next", len(order)), callback=feeder)

        client.submit(("put", "first", 0), callback=feeder)
        client.submit(("put", "second", 0))
        for sequence in range(4):
            if client.current is None:
                break
            for replica in (1, 2):
                client.on_reply(
                    KIND_REPLY, reply_from(replica, CLIENT_PID, sequence, None), replica
                )
        sequences = [entry[0] for entry in client.completed]
        assert sequences == sorted(sequences)
        # "second" was queued before the feeder's follow-up.
        assert [entry[1][1] for entry in client.completed][:2] == ["first", "second"]

    def test_latency_stats_on_idle_client(self):
        host = FakeHost()
        client = make_client(host)
        assert client.mean_latency() == 0.0
        assert client.throughput() == 0.0
