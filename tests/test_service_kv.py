"""Tests for the replicated KV service state machine (ServiceKVStore)."""

import pytest

from repro.service.kv import STALE, ServiceKVStore


class TestOperations:
    def setup_method(self):
        self.kv = ServiceKVStore()

    def test_put_returns_previous_value(self):
        assert self.kv.apply(("put", "a", 1)) is None
        assert self.kv.apply(("put", "a", 2)) == 1
        assert self.kv.get("a") == 2

    def test_get_and_del(self):
        self.kv.apply(("put", "a", 1))
        assert self.kv.apply(("get", "a")) == 1
        assert self.kv.apply(("del", "a")) == 1
        assert self.kv.apply(("get", "a")) is None
        assert self.kv.apply(("del", "a")) is None

    def test_cas_success_and_failure(self):
        # None matches an absent key.
        assert self.kv.apply(("cas", "k", None, 10)) == ("ok", None)
        assert self.kv.apply(("cas", "k", 10, 11)) == ("ok", 10)
        # Mismatched expectation: no write.
        assert self.kv.apply(("cas", "k", 99, 12)) == ("fail", 11)
        assert self.kv.get("k") == 11

    def test_noop_and_unknown(self):
        assert self.kv.apply(("noop",)) is None
        assert self.kv.apply(("frob", "x")) == ("rejected", "frob")
        assert len(self.kv) == 0


class TestAtMostOnce:
    def setup_method(self):
        self.kv = ServiceKVStore()

    def test_retry_of_last_request_returns_cached_result(self):
        first = self.kv.apply_request(7, 0, ("put", "a", 1))
        again = self.kv.apply_request(7, 0, ("put", "a", 1))
        assert first is None and again is None
        assert self.kv.get("a") == 1
        assert self.kv.applied_requests == 1
        assert self.kv.duplicates_refused == 1

    def test_cached_result_is_the_original_not_a_reexecution(self):
        self.kv.apply_request(7, 0, ("put", "a", 1))
        self.kv.apply_request(7, 1, ("put", "a", 2))
        # A straggler retry of sequence 1 must see the result computed
        # the first time ("previous value was 1"), not a re-execution.
        assert self.kv.apply_request(7, 1, ("put", "a", 2)) == 1
        assert self.kv.get("a") == 2

    def test_stale_sequence_is_refused(self):
        self.kv.apply_request(7, 0, ("put", "a", 1))
        self.kv.apply_request(7, 1, ("put", "a", 2))
        result = self.kv.apply_request(7, 0, ("put", "a", 1))
        assert result == (STALE, 0, 1)
        assert self.kv.get("a") == 2
        assert self.kv.duplicates_refused == 1

    def test_dedup_is_per_client(self):
        self.kv.apply_request(7, 0, ("put", "a", 1))
        self.kv.apply_request(8, 0, ("put", "a", 2))
        assert self.kv.duplicates_refused == 0
        assert self.kv.applied_requests == 2
        assert self.kv.known_clients == 2

    def test_at_most_once_intact_equation(self):
        for seq in range(3):
            self.kv.apply_request(7, seq, ("put", "a", seq))
        self.kv.apply_request(8, 0, ("get", "a"))
        self.kv.apply_request(7, 2, ("put", "a", 2))  # retry, refused
        assert self.kv.at_most_once_intact()
        # Simulate a double apply: the equation must break.
        self.kv.applied_requests += 1
        assert not self.kv.at_most_once_intact()


class TestCheckpointing:
    def test_snapshot_restore_round_trip(self):
        kv = ServiceKVStore()
        kv.apply_request(7, 0, ("put", "a", 1))
        kv.apply_request(7, 1, ("cas", "a", 1, 2))
        kv.apply_request(8, 0, ("del", "missing"))

        clone = ServiceKVStore()
        clone.restore(kv.snapshot_items(), [])
        assert clone.state_digest() == kv.state_digest()
        assert clone.get("a") == 2
        # applied_requests re-baselines from the dedup table so the
        # at-most-once equation stays exact after state transfer.
        assert clone.applied_requests == kv.applied_requests
        assert clone.at_most_once_intact()

    def test_restored_store_still_refuses_covered_duplicates(self):
        kv = ServiceKVStore()
        kv.apply_request(7, 0, ("put", "a", 1))
        kv.apply_request(7, 1, ("put", "a", 2))

        clone = ServiceKVStore()
        clone.restore(kv.snapshot_items(), [])
        assert clone.apply_request(7, 1, ("put", "a", 2)) == 1
        assert clone.duplicates_refused == 1
        assert clone.get("a") == 2

    def test_digest_is_history_independent(self):
        # A replica that caught up via compact snapshot carries no flat
        # history; it must still digest-match a replica that executed
        # every op — the dedup table pins each client's position.
        executed = ServiceKVStore()
        executed.apply_request(7, 0, ("put", "a", 1))
        executed.apply_request(7, 1, ("get", "a"))
        transferred = ServiceKVStore()
        transferred.restore(executed.snapshot_items(), [])
        assert executed.history and not transferred.history
        assert executed.state_digest() == transferred.state_digest()

    def test_restore_rejects_foreign_snapshot(self):
        kv = ServiceKVStore()
        with pytest.raises(ValueError):
            kv.restore(("not-svc", (), ()), [])
