"""Tests for the service load generator and the sim load driver."""

import pytest

from repro.service.client import Completion
from repro.service.loadgen import (
    LoadGenerator,
    Workload,
    as_completion,
    percentile,
    run_sim_load,
    summarize_phase,
)


class TestWorkload:
    def test_deterministic_for_a_seed(self):
        a = Workload(seed=5, keys=50)
        b = Workload(seed=5, keys=50)
        assert [a.next_op() for _ in range(50)] == [b.next_op() for _ in range(50)]

    def test_different_seeds_diverge(self):
        a = Workload(seed=5, keys=50)
        b = Workload(seed=6, keys=50)
        assert [a.next_op() for _ in range(50)] != [b.next_op() for _ in range(50)]

    def test_zipfian_skew_favours_low_ranks(self):
        workload = Workload(seed=1, keys=100, zipf_s=1.2)
        counts = {}
        for _ in range(3000):
            key = workload.next_key()
            counts[key] = counts.get(key, 0) + 1
        assert max(counts, key=counts.get) == "key-0"
        assert counts["key-0"] > 10 * counts.get("key-50", 1)

    def test_op_mix_shapes(self):
        workload = Workload(seed=2, keys=10)
        seen = set()
        for _ in range(500):
            op = workload.next_op()
            seen.add(op[0])
            if op[0] == "cas":
                assert len(op) == 4
            elif op[0] == "put":
                assert len(op) == 3
            else:
                assert len(op) == 2
        assert seen == {"get", "put", "cas", "del"}

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Workload(seed=1, keys=0)
        with pytest.raises(ValueError):
            Workload(seed=1, keys=10, mix=(("get", 0.0),))


class TestStats:
    def test_percentile_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50) == 20.0
        assert percentile(values, 99) == 40.0
        assert percentile(values, 0) == 10.0
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99) == 7.0

    def test_summarize_phase_windows_on_completion_time(self):
        completions = [
            (0, ("get", "k"), None, 0.5, 1.0, 0),
            (1, ("get", "k"), None, 1.5, 5.0, 0),
            (2, ("get", "k"), None, 2.5, 9.0, 0),
        ]
        phase = summarize_phase(completions, 0.0, 6.0)
        assert phase["completed"] == 2
        assert phase["throughput"] == round(2 / 6.0, 3)
        assert phase["latency_p50"] == 0.5
        assert phase["latency_p99"] == 1.5

    def test_summarize_phase_empty_window(self):
        phase = summarize_phase([], 0.0, 10.0)
        assert phase["completed"] == 0
        assert phase["latency_mean"] == 0.0
        assert phase["latency_p99"] == 0.0

    def test_as_completion_coerces_legacy_tuples(self):
        # Regression for the named-record migration: bare 6-tuples (the
        # historical completion layout) still summarize identically to
        # Completion records — field names, not positions, do the work.
        legacy = (0, ("get", "k"), "v", 0.5, 1.0, 2)
        entry = as_completion(legacy)
        assert isinstance(entry, Completion)
        assert entry.latency == 0.5
        assert entry.completed_at == 1.0
        assert entry.view == 2
        assert as_completion(entry) is entry
        named = [Completion(*row) for row in (
            (0, ("get", "k"), None, 0.5, 1.0, 0),
            (1, ("get", "k"), None, 1.5, 5.0, 0),
        )]
        bare = [tuple(row) for row in named]
        assert summarize_phase(named, 0.0, 6.0) == summarize_phase(bare, 0.0, 6.0)


class TestLoadGeneratorValidation:
    def test_open_loop_needs_a_rate(self):
        workload = Workload(seed=1, keys=10)
        with pytest.raises(ValueError):
            LoadGenerator(object(), [object()], workload, mode="open")
        with pytest.raises(ValueError):
            LoadGenerator(object(), [object()], workload, mode="wat")
        with pytest.raises(ValueError):
            LoadGenerator(object(), [], workload)


class TestSimLoad:
    def test_closed_loop_steady_state(self):
        report = run_sim_load(n=4, f=1, clients=10, duration=40.0, seed=3)
        assert report["completed"] > 0
        assert report["completed"] == report["offered"]
        assert report["at_most_once"]
        assert report["digests_agree"]
        steady = report["phases"]["steady"]
        # In-flight requests at the window edge finish during the drain.
        assert 0 < steady["completed"] <= report["completed"]
        assert steady["latency_p50"] <= steady["latency_p99"]
        # Every completed request was applied exactly once at the frontier.
        assert max(report["replica_applied"].values()) == report["completed"]

    def test_open_loop_respects_offered_rate(self):
        report = run_sim_load(
            n=4, f=1, clients=10, duration=40.0, seed=3, mode="open", rate=0.5
        )
        # One arrival per 2 sim-seconds for 40 sim-seconds.
        assert 15 <= report["offered"] <= 21
        assert report["completed"] == report["offered"]
        assert report["at_most_once"]

    def test_at_most_once_under_retry_and_leader_kill(self):
        # An aggressive retry timeout makes clients rebroadcast while
        # the original request is still in flight, and the kill forces a
        # view change mid-load: at-most-once must hold through both.
        report = run_sim_load(
            n=4, f=1, clients=10, duration=80.0, seed=3,
            retry_timeout=4.0, kill_leader_at=30.0, recover_at=55.0,
        )
        assert report["retries"] > 0
        assert report["at_most_once"]
        assert report["digests_agree"]
        assert report["completed"] == report["offered"]
        assert max(report["replica_applied"].values()) == report["completed"]
        view_change = report["phases"]["view_change"]
        assert view_change["outage"] is not None and view_change["outage"] > 0
        assert view_change["new_view_learned_by"] == 10
        # Progress resumed after the view change.
        assert report["phases"]["recovery"]["completed"] > 0
