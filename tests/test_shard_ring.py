"""Unit tests for the consistent-hash ring (DESIGN.md §5.19).

The statistical laws (balance across seeds, minimal remapping fractions)
live in the props tier (``test_props_shard_ring.py``); here are the
exact, seed-free properties: determinism, wraparound, validation, and
the remap-targets-the-new-shard invariant on a fixed configuration.
"""

import pytest

from repro.shard.ring import DEFAULT_VNODES, HashRing, key_point
from repro.util.errors import ConfigurationError

KEYS = [f"key-{i}" for i in range(500)]


class TestConstruction:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            HashRing(0)
        with pytest.raises(ConfigurationError):
            HashRing(2, vnodes=0)

    def test_describe_is_the_identity(self):
        ring = HashRing(3, vnodes=64, seed=9)
        assert ring.describe() == {"shards": 3, "vnodes": 64, "seed": 9}


class TestMapping:
    def test_deterministic_across_instances(self):
        a = HashRing(4, seed=3)
        b = HashRing(4, seed=3)
        assert [a.shard_of(k) for k in KEYS] == [b.shard_of(k) for k in KEYS]

    def test_seed_changes_the_arcs_not_the_key_points(self):
        a = HashRing(4, seed=3)
        b = HashRing(4, seed=4)
        assert key_point("k") == key_point("k")  # key positions unseeded
        assert any(a.shard_of(k) != b.shard_of(k) for k in KEYS)

    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert {ring.shard_of(k) for k in KEYS} == {0}

    def test_wraparound_past_the_last_vnode(self):
        # A key hashing beyond every vnode point must wrap to the ring's
        # first vnode, not fall off the end.  Find one by construction.
        ring = HashRing(2, vnodes=4, seed=3)
        last = max(ring._points)
        wrapping = next(
            k for k in (f"probe-{i}" for i in range(100_000))
            if key_point(k) > last
        )
        assert ring.shard_of(wrapping) == ring._owners[0]

    def test_distribution_counts_every_shard(self):
        ring = HashRing(4, seed=3)
        dist = ring.distribution(KEYS)
        assert sorted(dist) == [0, 1, 2, 3]
        assert sum(dist.values()) == len(KEYS)


class TestRemapping:
    def test_growth_only_moves_keys_onto_the_new_shard(self):
        old = HashRing(3, seed=3)
        new = HashRing(4, seed=3)
        moved = old.remapped(new, KEYS)
        assert moved  # the new shard takes a share
        assert all(new.shard_of(k) == 3 for k in moved)

    def test_same_ring_remaps_nothing(self):
        ring = HashRing(4, seed=3, vnodes=DEFAULT_VNODES)
        assert ring.remapped(HashRing(4, seed=3), KEYS) == []
