"""Tests for the shard router and the sharded sim deployment.

Unit half: routing math and pool selection against fake clients.
Integration half: :func:`repro.shard.sim.run_sim_shard_load` — the
M-world lockstep driver — covering shard coverage, invariants,
aggregate accounting, determinism, and single-shard fault containment.
"""

import pytest

from repro.service.client import Completion
from repro.shard.ring import HashRing
from repro.shard.router import (
    ShardedLoadGenerator,
    ShardRouter,
    key_of,
)
from repro.shard.sim import run_sim_shard_load, unaffected_shards_ok
from repro.util.errors import ConfigurationError


class FakeClient:
    def __init__(self):
        self.submitted = []
        self.idle = True
        self.completed = []
        self.retries = 0

    def submit(self, op, callback=None):
        self.submitted.append(tuple(op))
        self.idle = False


def make_router(shards=2, per_shard=2, seed=3):
    ring = HashRing(shards, seed=seed)
    pools = {
        s: [FakeClient() for _ in range(per_shard)] for s in range(shards)
    }
    return ShardRouter(ring, pools), pools


class TestKeyOf:
    def test_key_is_position_one(self):
        assert key_of(("put", "alpha", 1)) == "alpha"
        assert key_of(("get", 42)) == "42"
        assert key_of(("noop",)) == ""


class TestShardRouter:
    def test_pools_must_cover_every_shard(self):
        ring = HashRing(2, seed=3)
        with pytest.raises(ConfigurationError):
            ShardRouter(ring, {0: [FakeClient()]})
        with pytest.raises(ConfigurationError):
            ShardRouter(ring, {0: [FakeClient()], 1: []})

    def test_routes_by_ring_ownership(self):
        router, pools = make_router()
        ops = [("put", f"key-{i}", i) for i in range(50)]
        for op in ops:
            shard = router.submit(op)
            assert shard == router.ring.shard_of(f"key-{op[2]}")
        assert sum(router.routed.values()) == len(ops)
        for s, pool in pools.items():
            assert sum(len(c.submitted) for c in pool) == router.routed[s]

    def test_idle_clients_preferred_within_a_pool(self):
        router, pools = make_router(shards=1, per_shard=3)
        pools[0][0].idle = False
        pools[0][1].idle = False
        assert router.client_for(0) is pools[0][2]
        # All busy: plain round-robin so queues spread evenly.
        pools[0][2].idle = False
        first = router.client_for(0)
        second = router.client_for(0)
        assert first is not second


class TestShardedLoadGeneratorValidation:
    def test_hosts_must_match_shards(self):
        router, _pools = make_router(shards=2)
        from repro.service.loadgen import Workload

        workload = Workload(seed=1, keys=10)
        with pytest.raises(ConfigurationError):
            ShardedLoadGenerator({0: object()}, router, workload)
        with pytest.raises(ConfigurationError):
            ShardedLoadGenerator(
                {0: object(), 1: object()}, router, workload, mode="open"
            )


class TestSimShardLoad:
    def test_two_shards_both_serve_and_invariants_hold(self):
        report = run_sim_shard_load(
            shards=2, n=4, f=1, clients=8, duration=40.0, drain=20.0, seed=3
        )
        report.pop("worlds")
        assert report["completed"] > 0
        assert report["completed"] == report["offered"]
        for s in (0, 1):
            block = report["per_shard"][s]
            assert block["completed"] > 0, f"shard {s} served nothing"
            assert block["at_most_once"] and block["digests_agree"]
        # Aggregate completions == sum of per-shard completions.
        assert report["completed"] == sum(
            block["completed"] for block in report["per_shard"].values()
        )
        assert report["at_most_once"] and report["digests_agree"]
        assert report["metrics_families"] > 0

    def test_same_seed_replays_identically(self):
        kwargs = dict(
            shards=2, n=4, f=1, clients=6, duration=30.0, drain=15.0, seed=7
        )
        a = run_sim_shard_load(**kwargs)
        b = run_sim_shard_load(**kwargs)
        a.pop("worlds")
        b.pop("worlds")
        assert a == b

    def test_killing_one_shards_leader_stays_contained(self):
        report = run_sim_shard_load(
            shards=2, n=4, f=1, clients=8, duration=120.0, drain=60.0,
            seed=3, kill_shard_leader_at=40.0, kill_shard=0, recover_at=80.0,
        )
        report.pop("worlds")
        kill = report["kill"]
        assert kill["shard"] == 0
        assert kill["view_change"]["outage"] is not None
        assert kill["view_change"]["outage"] > 0
        # The untouched shard keeps serving through shard 0's outage.
        assert unaffected_shards_ok(report)
        other = report["per_shard"][1]["phases"]
        assert other["crash"]["completed"] > 0
        assert report["at_most_once"] and report["digests_agree"]

    def test_shard_completion_records_are_named(self):
        report = run_sim_shard_load(
            shards=2, n=4, f=1, clients=4, duration=20.0, drain=10.0, seed=3
        )
        worlds = report.pop("worlds")
        assert len(worlds) == 2
        for world in worlds:
            for client in world.clients.values():
                for entry in client.completed:
                    assert isinstance(entry, Completion)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_sim_shard_load(shards=0)
        with pytest.raises(ConfigurationError):
            run_sim_shard_load(shards=2, kill_shard=2, kill_shard_leader_at=1.0)
        with pytest.raises(ConfigurationError):
            run_sim_shard_load(shards=2, lockstep_quantum=0.0)
