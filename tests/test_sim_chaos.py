"""Chaotic-channel mechanics, and byte-identity of the chaos-off world.

Two families of guarantees:

1. The :class:`ChaosConfig` faults actually happen — drop loses messages,
   duplicate double-delivers, reorder breaks FIFO — and they happen
   deterministically per seed.
2. The whole chaos machinery is invisible when off: a network built with
   ``chaos=None`` and one built with an all-zero config produce the same
   full event log and message statistics, entry for entry, because an
   inactive config never touches the chaos RNG stream and the chaos RNG is
   a separate child of the run RNG in the first place.
"""

import pytest

from repro.sim.latency import FixedLatency
from repro.sim.network import ChaosConfig, LinkChaos
from repro.sim.runtime import Simulation, SimulationConfig
from repro.util.errors import ConfigurationError
from tests.conftest import build_qs_world


def plain_sim(n=4, seed=1, chaos=None, latency=None, fifo=True):
    sim = Simulation(
        SimulationConfig(
            n=n, seed=seed, fifo=fifo, chaos=chaos,
            latency=latency or FixedLatency(1.0),
        )
    )
    received = {pid: [] for pid in sim.pids}
    for pid in sim.pids:
        sim.host(pid).subscribe("m", lambda k, p, s, pid=pid: received[pid].append((p, s)))
    sim.start()
    return sim, received


class TestChaosConfigValidation:
    def test_probabilities_must_be_in_unit_interval(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(drop=1.5)
        with pytest.raises(ConfigurationError):
            ChaosConfig(duplicate=-0.1)
        with pytest.raises(ConfigurationError):
            LinkChaos(reorder=2.0)

    def test_reorder_delay_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(reorder_delay=0.0)

    def test_active_reflects_defaults_and_link_overrides(self):
        assert not ChaosConfig().active
        assert ChaosConfig(drop=0.1).active
        assert ChaosConfig(links={(1, 2): LinkChaos(duplicate=0.5)}).active
        assert not ChaosConfig(links={(1, 2): LinkChaos()}).active

    def test_for_link_prefers_the_override(self):
        config = ChaosConfig(drop=0.5, links={(1, 2): LinkChaos(drop=0.0)})
        assert config.for_link(1, 2).drop == 0.0
        assert config.for_link(2, 1).drop == 0.5


class TestChaosMechanics:
    def test_drop_one_loses_everything(self):
        sim, received = plain_sim(chaos=ChaosConfig(drop=1.0))
        for _ in range(5):
            sim.host(1).send(2, "m", "x")
        sim.run_until(50.0)
        assert received[2] == []
        assert sim.stats.lost_by_kind["m"] == 5
        assert sim.log.count("net.lost") == 5

    def test_drop_is_per_link_with_overrides(self):
        chaos = ChaosConfig(links={(1, 2): LinkChaos(drop=1.0)})
        sim, received = plain_sim(chaos=chaos)
        sim.host(1).send(2, "m", "lossy-link")
        sim.host(1).send(3, "m", "clean-link")
        sim.run_until(50.0)
        assert received[2] == []
        assert received[3] == [("clean-link", 1)]

    def test_duplicate_one_delivers_twice(self):
        sim, received = plain_sim(chaos=ChaosConfig(duplicate=1.0))
        sim.host(1).send(2, "m", "twin")
        sim.run_until(50.0)
        assert received[2] == [("twin", 1), ("twin", 1)]
        assert sim.log.count("net.dup") == 1

    def test_reorder_can_break_fifo(self):
        # With reorder certain and a large extra-delay window, ten FIFO
        # sends on one link arrive in a different order than sent for at
        # least one seed-determined pair.
        chaos = ChaosConfig(reorder=1.0, reorder_delay=50.0)
        sim, received = plain_sim(chaos=chaos)
        for i in range(10):
            sim.host(1).send(2, "m", i)
        sim.run_until(200.0)
        payloads = [p for p, _ in received[2]]
        assert sorted(payloads) == list(range(10))  # nothing lost
        assert payloads != list(range(10))  # ...but order was broken

    def test_chaos_is_deterministic_per_seed(self):
        def run(seed):
            sim, received = plain_sim(
                seed=seed, chaos=ChaosConfig(drop=0.3, duplicate=0.2, reorder=0.2)
            )
            for i in range(30):
                sim.host(1).send(2, "m", i)
            sim.run_until(300.0)
            return [p for p, _ in received[2]]

        assert run(7) == run(7)
        assert run(7) != run(8)  # 30 messages at p=0.3: astronomically unlikely to tie


class TestChaosOffByteIdentity:
    def _trace(self, chaos, seed=3):
        sim, modules = build_qs_world(10, 3, seed=seed, chaos=chaos)
        sim.at(10.0, lambda: sim.host(1).crash())
        sim.run_until(120.0)
        events = tuple(
            (e.time, e.process, e.kind, tuple(sorted(e.payload.items())))
            for e in sim.log
        )
        return events, sim.stats.snapshot()

    def test_all_zero_chaos_reproduces_the_plain_trace(self):
        # The acceptance bar for the whole feature: constructing the chaos
        # machinery without activating it changes *nothing* — same event
        # log (times, processes, payloads) and same message statistics.
        plain_events, plain_stats = self._trace(chaos=None)
        zero_events, zero_stats = self._trace(chaos=ChaosConfig())
        assert zero_events == plain_events
        assert zero_stats == plain_stats

    def test_chaotic_run_differs_from_plain(self):
        # Sanity check on the previous test's power: actually enabling
        # chaos on the same seed does perturb the trace.
        plain_events, _ = self._trace(chaos=None)
        lossy_events, _ = self._trace(chaos=ChaosConfig(drop=0.2))
        assert lossy_events != plain_events
