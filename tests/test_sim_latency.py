"""Tests for latency models, including eventual synchrony (GST)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.latency import (
    EventuallySynchronousLatency,
    FixedLatency,
    UniformLatency,
)
from repro.util.errors import ConfigurationError
from repro.util.rand import DeterministicRng


class TestFixedLatency:
    def test_constant(self):
        model = FixedLatency(2.5)
        rng = DeterministicRng(1)
        assert model.sample(0.0, 1, 2, rng) == 2.5
        assert model.round_length(100.0) == 2.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            FixedLatency(0.0)


class TestUniformLatency:
    def test_within_bounds(self):
        model = UniformLatency(0.5, 1.5)
        rng = DeterministicRng(1)
        for _ in range(200):
            assert 0.5 <= model.sample(0.0, 1, 2, rng) <= 1.5

    def test_round_length_is_upper_bound(self):
        assert UniformLatency(0.5, 1.5).round_length(0.0) == 1.5

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(2.0, 1.0)

    def test_rejects_zero_low(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(0.0, 1.0)


class TestEventuallySynchronous:
    def test_post_gst_bounded_by_delta(self):
        model = EventuallySynchronousLatency(gst=10.0, delta=1.0, pre_gst_max=20.0)
        rng = DeterministicRng(1)
        for _ in range(200):
            assert model.sample(10.0, 1, 2, rng) <= 1.0
            assert model.sample(50.0, 1, 2, rng) <= 1.0

    def test_pre_gst_can_exceed_delta(self):
        model = EventuallySynchronousLatency(gst=100.0, delta=1.0, pre_gst_max=20.0)
        rng = DeterministicRng(1)
        samples = [model.sample(0.0, 1, 2, rng) for _ in range(200)]
        assert max(samples) > 1.0  # erratic phase exceeds delta
        assert max(samples) <= 20.0

    def test_round_length_switches_at_gst(self):
        model = EventuallySynchronousLatency(gst=10.0, delta=1.0, pre_gst_max=20.0)
        assert model.round_length(5.0) == 20.0
        assert model.round_length(10.0) == 1.0

    def test_gst_zero_means_synchronous_from_start(self):
        model = EventuallySynchronousLatency(gst=0.0, delta=2.0, pre_gst_max=20.0)
        rng = DeterministicRng(1)
        assert all(model.sample(0.0, 1, 2, rng) <= 2.0 for _ in range(100))

    def test_rejects_pre_gst_below_delta(self):
        with pytest.raises(ConfigurationError):
            EventuallySynchronousLatency(delta=5.0, pre_gst_max=1.0)

    def test_rejects_negative_gst(self):
        with pytest.raises(ConfigurationError):
            EventuallySynchronousLatency(gst=-1.0)

    def test_rejects_min_delay_above_delta(self):
        with pytest.raises(ConfigurationError):
            EventuallySynchronousLatency(delta=0.5, min_delay=1.0)

    @given(st.floats(0, 100), st.integers(0, 2**16))
    def test_samples_always_positive(self, time, seed):
        model = EventuallySynchronousLatency(gst=50.0, delta=1.0, pre_gst_max=10.0)
        rng = DeterministicRng(seed)
        assert model.sample(time, 1, 2, rng) > 0
