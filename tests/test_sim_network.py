"""Tests for the network: reliability, FIFO, interceptors, stats."""

import pytest

from repro.sim.latency import FixedLatency, UniformLatency
from repro.sim.network import DELIVER, DROP, Network, SendAction
from repro.sim.scheduler import Scheduler
from repro.util.errors import SimulationError
from repro.util.eventlog import EventLog
from repro.util.rand import DeterministicRng


class FakeHost:
    def __init__(self, pid):
        self.pid = pid
        self.running = True
        self.received = []

    def on_receive(self, kind, payload, src):
        self.received.append((kind, payload, src))


def make_network(fifo=True, latency=None, n=3):
    scheduler = Scheduler()
    network = Network(
        scheduler,
        DeterministicRng(1),
        latency=latency or FixedLatency(1.0),
        fifo=fifo,
        log=EventLog(),
    )
    hosts = {pid: FakeHost(pid) for pid in range(1, n + 1)}
    for host in hosts.values():
        network.register_host(host)
    return scheduler, network, hosts


class TestDelivery:
    def test_basic_delivery(self):
        scheduler, network, hosts = make_network()
        network.send(1, 2, "ping", "hello")
        scheduler.run_to_quiescence()
        assert hosts[2].received == [("ping", "hello", 1)]

    def test_delivery_respects_latency(self):
        scheduler, network, hosts = make_network(latency=FixedLatency(2.5))
        seen_at = []
        hosts[2].on_receive = lambda *a: seen_at.append(scheduler.now)
        network.send(1, 2, "ping", None)
        scheduler.run_to_quiescence()
        assert seen_at == [2.5]

    def test_send_to_unknown_host_dropped_and_logged(self):
        # Byzantine peers can name arbitrary ids; reacting must not crash.
        scheduler, network, _ = make_network()
        network.send(1, 99, "ping", None)
        scheduler.run_to_quiescence()
        assert network.log.count("net.unroutable") == 1

    def test_inject_to_unknown_host_raises(self):
        _, network, _ = make_network()
        with pytest.raises(SimulationError):
            network.inject(1, 99, "ping", None)

    def test_crashed_host_receives_nothing(self):
        scheduler, network, hosts = make_network()
        hosts[2].running = False
        network.send(1, 2, "ping", None)
        scheduler.run_to_quiescence()
        assert hosts[2].received == []

    def test_duplicate_host_registration_rejected(self):
        _, network, hosts = make_network()
        with pytest.raises(SimulationError):
            network.register_host(hosts[1])


class TestFifo:
    def test_fifo_preserves_per_link_order(self):
        # High-variance latency would reorder without FIFO enforcement.
        scheduler, network, hosts = make_network(
            fifo=True, latency=UniformLatency(0.1, 10.0)
        )
        for i in range(30):
            network.send(1, 2, "seq", i)
        scheduler.run_to_quiescence()
        payloads = [payload for _, payload, _ in hosts[2].received]
        assert payloads == list(range(30))

    def test_non_fifo_can_reorder(self):
        scheduler, network, hosts = make_network(
            fifo=False, latency=UniformLatency(0.1, 10.0)
        )
        for i in range(30):
            network.send(1, 2, "seq", i)
        scheduler.run_to_quiescence()
        payloads = [payload for _, payload, _ in hosts[2].received]
        assert sorted(payloads) == list(range(30))
        assert payloads != list(range(30))  # overwhelmingly likely

    def test_fifo_is_per_link(self):
        scheduler, network, hosts = make_network(
            fifo=True, latency=UniformLatency(0.1, 10.0)
        )
        network.send(1, 3, "a", 1)
        network.send(2, 3, "b", 2)  # different link: no ordering constraint
        scheduler.run_to_quiescence()
        assert len(hosts[3].received) == 2


class TestInterceptors:
    def test_drop(self):
        scheduler, network, hosts = make_network()
        network.set_interceptor(1, lambda env: SendAction(verdict=DROP))
        network.send(1, 2, "ping", None)
        scheduler.run_to_quiescence()
        assert hosts[2].received == []
        assert network.stats.dropped_by_kind["ping"] == 1

    def test_extra_delay(self):
        scheduler, network, hosts = make_network(latency=FixedLatency(1.0))
        network.set_interceptor(1, lambda env: SendAction(extra_delay=5.0))
        seen_at = []
        hosts[2].on_receive = lambda *a: seen_at.append(scheduler.now)
        network.send(1, 2, "ping", None)
        scheduler.run_to_quiescence()
        assert seen_at == [6.0]

    def test_payload_override(self):
        scheduler, network, hosts = make_network()
        network.set_interceptor(1, lambda env: SendAction(payload_override="evil"))
        network.send(1, 2, "ping", "honest")
        scheduler.run_to_quiescence()
        assert hosts[2].received == [("ping", "evil", 1)]

    def test_interceptor_only_touches_own_traffic(self):
        scheduler, network, hosts = make_network()
        network.set_interceptor(1, lambda env: SendAction(verdict=DROP))
        network.send(2, 3, "ping", None)  # correct process's traffic
        scheduler.run_to_quiescence()
        assert hosts[3].received == [("ping", None, 2)]

    def test_clearing_interceptor(self):
        scheduler, network, hosts = make_network()
        network.set_interceptor(1, lambda env: SendAction(verdict=DROP))
        network.set_interceptor(1, None)
        network.send(1, 2, "ping", None)
        scheduler.run_to_quiescence()
        assert len(hosts[2].received) == 1

    def test_inject_bypasses_interceptor(self):
        scheduler, network, hosts = make_network()
        network.set_interceptor(1, lambda env: SendAction(verdict=DROP))
        network.inject(1, 2, "ping", "raw")
        scheduler.run_to_quiescence()
        assert hosts[2].received == [("ping", "raw", 1)]


class TestStats:
    def test_sent_and_delivered_counts(self):
        scheduler, network, _ = make_network()
        network.send(1, 2, "a", None)
        network.send(1, 3, "a", None)
        network.send(2, 3, "b", None)
        scheduler.run_to_quiescence()
        assert network.stats.sent_by_kind["a"] == 2
        assert network.stats.delivered_by_kind["b"] == 1
        assert network.stats.total_sent() == 3

    def test_sent_between(self):
        scheduler, network, _ = make_network()
        network.send(1, 2, "a", None)
        network.send(1, 3, "a", None)
        scheduler.run_to_quiescence()
        assert network.stats.sent_between({1, 2}) == 1
        assert network.stats.sent_between({1, 2, 3}) == 2

    def test_snapshot_diff(self):
        scheduler, network, _ = make_network()
        network.send(1, 2, "a", None)
        scheduler.run_to_quiescence()
        before = network.stats.snapshot()
        network.send(1, 2, "a", None)
        network.send(1, 2, "b", None)
        scheduler.run_to_quiescence()
        assert network.stats.diff_sent(before) == {"a": 1, "b": 1}

    def test_busiest_links(self):
        scheduler, network, _ = make_network()
        for _ in range(3):
            network.send(1, 2, "a", None)
        network.send(2, 1, "a", None)
        scheduler.run_to_quiescence()
        assert network.stats.busiest_links(1)[0] == ((1, 2), 3)
