"""Network partitions: held (not lost) traffic, and QS behaviour across
a partition-and-heal cycle."""

import pytest

from repro.core.spec import agreement_holds, no_suspicion_holds
from repro.sim.latency import FixedLatency
from repro.sim.runtime import Simulation, SimulationConfig
from repro.util.errors import SimulationError
from tests.conftest import build_qs_world


def plain_sim(n=4):
    sim = Simulation(SimulationConfig(n=n, seed=1, latency=FixedLatency(1.0)))
    received = {pid: [] for pid in sim.pids}
    for pid in sim.pids:
        sim.host(pid).subscribe("m", lambda k, p, s, pid=pid: received[pid].append((p, s)))
    sim.start()
    return sim, received


class TestPartitionMechanics:
    def test_cross_partition_traffic_held(self):
        sim, received = plain_sim()
        sim.network.partition({1, 2}, {3, 4})
        sim.host(1).send(3, "m", "cross")
        sim.run_until(20.0)
        assert received[3] == []

    def test_intra_partition_traffic_flows(self):
        sim, received = plain_sim()
        sim.network.partition({1, 2}, {3, 4})
        sim.host(1).send(2, "m", "local")
        sim.run_until(20.0)
        assert received[2] == [("local", 1)]

    def test_heal_releases_held_messages(self):
        sim, received = plain_sim()
        sim.network.partition({1, 2}, {3, 4})
        sim.host(1).send(3, "m", "cross-1")
        sim.host(1).send(3, "m", "cross-2")
        sim.run_until(20.0)
        released = sim.network.heal()
        assert released == 2
        sim.run_until(40.0)
        # Reliability + FIFO: both arrive, in order.
        assert received[3] == [("cross-1", 1), ("cross-2", 1)]

    def test_ungrouped_processes_keep_connectivity(self):
        sim, received = plain_sim()
        sim.network.partition({1}, {2})  # 3, 4 in no group
        sim.host(3).send(1, "m", "a")
        sim.host(1).send(4, "m", "b")
        sim.run_until(20.0)
        assert received[1] == [("a", 3)]
        assert received[4] == [("b", 1)]

    def test_overlapping_groups_rejected(self):
        sim, _ = plain_sim()
        with pytest.raises(SimulationError):
            sim.network.partition({1, 2}, {2, 3})

    def test_partition_events_logged(self):
        sim, _ = plain_sim()
        sim.network.partition({1, 2}, {3, 4})
        sim.network.heal()
        assert sim.log.count("net.partition") == 1
        assert sim.log.count("net.heal") == 1


class TestQuorumSelectionAcrossPartition:
    def test_partition_then_heal_converges(self):
        # A minority partition {4, 5} is cut off for a while: the majority
        # side suspects them and selects around them; after healing, the
        # suspicions cancel, updates flow, and everyone re-converges.
        sim, modules = build_qs_world(5, 2)
        sim.at(20.0, lambda: sim.network.partition({1, 2, 3}, {4, 5}))
        sim.at(120.0, lambda: sim.network.heal())
        sim.run_until(400.0)
        correct = [modules[p] for p in sim.pids]
        assert agreement_holds(correct)
        assert no_suspicion_holds(correct)

    def test_majority_side_suspects_minority_during_partition(self):
        sim, modules = build_qs_world(5, 2)
        sim.at(20.0, lambda: sim.network.partition({1, 2, 3}, {4, 5}))
        sim.run_until(100.0)
        assert {4, 5} <= set(sim.host(1).fd.suspected)

    def test_suspicions_cancel_after_heal(self):
        sim, modules = build_qs_world(5, 2)
        sim.at(20.0, lambda: sim.network.partition({1, 2, 3}, {4, 5}))
        sim.at(120.0, lambda: sim.network.heal())
        sim.run_until(400.0)
        for pid in sim.pids:
            assert sim.host(pid).fd.suspected == frozenset()
