"""Network partitions: held (not lost) traffic, and QS behaviour across
a partition-and-heal cycle."""

import pytest

from repro.core.spec import agreement_holds, no_suspicion_holds
from repro.failures.strategies import PartitionScheduleStrategy
from repro.sim.latency import FixedLatency
from repro.sim.runtime import Simulation, SimulationConfig
from repro.util.errors import ConfigurationError, SimulationError
from tests.conftest import build_qs_world


def plain_sim(n=4):
    sim = Simulation(SimulationConfig(n=n, seed=1, latency=FixedLatency(1.0)))
    received = {pid: [] for pid in sim.pids}
    for pid in sim.pids:
        sim.host(pid).subscribe("m", lambda k, p, s, pid=pid: received[pid].append((p, s)))
    sim.start()
    return sim, received


class TestPartitionMechanics:
    def test_cross_partition_traffic_held(self):
        sim, received = plain_sim()
        sim.network.partition({1, 2}, {3, 4})
        sim.host(1).send(3, "m", "cross")
        sim.run_until(20.0)
        assert received[3] == []

    def test_intra_partition_traffic_flows(self):
        sim, received = plain_sim()
        sim.network.partition({1, 2}, {3, 4})
        sim.host(1).send(2, "m", "local")
        sim.run_until(20.0)
        assert received[2] == [("local", 1)]

    def test_heal_releases_held_messages(self):
        sim, received = plain_sim()
        sim.network.partition({1, 2}, {3, 4})
        sim.host(1).send(3, "m", "cross-1")
        sim.host(1).send(3, "m", "cross-2")
        sim.run_until(20.0)
        released = sim.network.heal()
        assert released == 2
        sim.run_until(40.0)
        # Reliability + FIFO: both arrive, in order.
        assert received[3] == [("cross-1", 1), ("cross-2", 1)]

    def test_ungrouped_processes_keep_connectivity(self):
        sim, received = plain_sim()
        sim.network.partition({1}, {2})  # 3, 4 in no group
        sim.host(3).send(1, "m", "a")
        sim.host(1).send(4, "m", "b")
        sim.run_until(20.0)
        assert received[1] == [("a", 3)]
        assert received[4] == [("b", 1)]

    def test_overlapping_groups_rejected(self):
        sim, _ = plain_sim()
        with pytest.raises(SimulationError):
            sim.network.partition({1, 2}, {2, 3})

    def test_partition_events_logged(self):
        sim, _ = plain_sim()
        sim.network.partition({1, 2}, {3, 4})
        sim.network.heal()
        assert sim.log.count("net.partition") == 1
        assert sim.log.count("net.heal") == 1


class TestRepartitionEdgeCases:
    """Layout changes while traffic is held — the bugs fixed in this PR."""

    def test_repartition_releases_messages_now_on_same_side(self):
        # Held under {1,2}|{3,4}; after re-partitioning to {1,3}|{2,4}
        # the 1->3 message no longer crosses and must be released — under
        # the old code it stayed stranded until a full heal().
        sim, received = plain_sim()
        sim.network.partition({1, 2}, {3, 4})
        sim.host(1).send(3, "m", "freed-by-repartition")
        sim.run_until(10.0)
        sim.network.partition({1, 3}, {2, 4})
        sim.run_until(30.0)
        assert received[3] == [("freed-by-repartition", 1)]
        event = sim.log.events(kind="net.partition")[-1]
        assert event.payload["released"] == 1

    def test_repartition_keeps_holding_still_crossing_messages(self):
        sim, received = plain_sim()
        sim.network.partition({1, 2}, {3, 4})
        sim.host(1).send(3, "m", "still-cut")
        sim.run_until(10.0)
        sim.network.partition({1, 4}, {2, 3})  # 1->3 crosses both layouts
        sim.run_until(30.0)
        assert received[3] == []
        sim.network.heal()
        sim.run_until(60.0)
        assert received[3] == [("still-cut", 1)]

    def test_heal_then_repartition_delivers_only_released_traffic(self):
        sim, received = plain_sim()
        sim.network.partition({1, 2}, {3, 4})
        sim.host(1).send(3, "m", "first")
        sim.run_until(10.0)
        sim.network.heal()
        sim.network.partition({1, 2}, {3, 4})
        sim.host(1).send(3, "m", "second")
        sim.run_until(30.0)
        # "first" was released by the heal; "second" is held by the new cut.
        assert received[3] == [("first", 1)]
        sim.network.heal()
        sim.run_until(60.0)
        assert received[3] == [("first", 1), ("second", 1)]

    def test_inject_delay_survives_partition_hold(self):
        # An inject with delay=10 held across a partition must still honour
        # the full delay after release — the old heal() path redispatched
        # with extra_delay=0, silently discarding it.
        sim, received = plain_sim()
        sim.network.partition({1}, {3})
        sim.network.inject(1, 3, "m", "slow", delay=10.0)
        sim.run_until(5.0)
        healed_at = 5.0
        sim.network.heal()
        sim.run_until(healed_at + 9.0)
        assert received[3] == []  # latency (1.0) + delay (10.0) not yet up
        sim.run_until(healed_at + 12.0)
        assert received[3] == [("slow", 1)]

    def test_repartition_release_preserves_inject_delay(self):
        sim, received = plain_sim()
        sim.network.partition({1}, {3})
        sim.network.inject(1, 3, "m", "slow", delay=10.0)
        sim.run_until(5.0)
        sim.network.partition({2}, {4})  # 1->3 no longer crosses: released
        sim.run_until(5.0 + 9.0)
        assert received[3] == []
        sim.run_until(5.0 + 12.0)
        assert received[3] == [("slow", 1)]


class TestPartitionScheduleStrategy:
    def test_timeline_replays_partitions_and_heals(self):
        sim, received = plain_sim()
        strategy = PartitionScheduleStrategy(
            sim,
            [
                (5.0, [(1, 2), (3, 4)]),
                (15.0, [(1, 3), (2, 4)]),  # re-partition, no heal between
                (25.0, None),
            ],
        )
        strategy.install()
        sim.at(6.0, lambda: sim.host(1).send(3, "m", "cross"))
        sim.run_until(60.0)
        # Held under the first cut, released by the second (1 and 3 joined).
        assert received[3] == [("cross", 1)]
        assert [t for t, _ in strategy.applied] == [5.0, 15.0, 25.0]
        assert strategy.applied[-1][1] is None
        assert sim.log.count("net.partition") == 2
        assert sim.log.count("net.heal") == 1

    def test_descending_timeline_rejected(self):
        sim, _ = plain_sim()
        with pytest.raises(ConfigurationError):
            PartitionScheduleStrategy(sim, [(10.0, None), (5.0, None)])


class TestQuorumSelectionAcrossPartition:
    def test_partition_then_heal_converges(self):
        # A minority partition {4, 5} is cut off for a while: the majority
        # side suspects them and selects around them; after healing, the
        # suspicions cancel, updates flow, and everyone re-converges.
        sim, modules = build_qs_world(5, 2)
        sim.at(20.0, lambda: sim.network.partition({1, 2, 3}, {4, 5}))
        sim.at(120.0, lambda: sim.network.heal())
        sim.run_until(400.0)
        correct = [modules[p] for p in sim.pids]
        assert agreement_holds(correct)
        assert no_suspicion_holds(correct)

    def test_majority_side_suspects_minority_during_partition(self):
        sim, modules = build_qs_world(5, 2)
        sim.at(20.0, lambda: sim.network.partition({1, 2, 3}, {4, 5}))
        sim.run_until(100.0)
        assert {4, 5} <= set(sim.host(1).fd.suspected)

    def test_suspicions_cancel_after_heal(self):
        sim, modules = build_qs_world(5, 2)
        sim.at(20.0, lambda: sim.network.partition({1, 2, 3}, {4, 5}))
        sim.at(120.0, lambda: sim.network.heal())
        sim.run_until(400.0)
        for pid in sim.pids:
            assert sim.host(pid).fd.suspected == frozenset()
