"""Tests for ProcessHost, Module wiring, and the Simulation runtime."""

import pytest

from repro.sim.process import Module
from repro.sim.runtime import Simulation, SimulationConfig
from repro.util.errors import ConfigurationError, SimulationError


class Recorder(Module):
    """Test module: records deliveries of one kind."""

    def __init__(self, host, kind="msg"):
        super().__init__(host)
        self.kind = kind
        self.received = []
        self.started = False

    def start(self):
        self.started = True
        self.host.subscribe(self.kind, lambda k, p, s: self.received.append((p, s)))


def make_sim(n=3, **kwargs):
    return Simulation(SimulationConfig(n=n, seed=1, **kwargs))


class TestHostBasics:
    def test_modules_started_once(self):
        sim = make_sim()
        module = sim.host(1).add_module(Recorder(sim.host(1)))
        sim.start()
        sim.start()  # idempotent
        assert module.started

    def test_send_and_deliver(self):
        sim = make_sim()
        receiver = sim.host(2).add_module(Recorder(sim.host(2)))
        sim.start()
        sim.host(1).send(2, "msg", "payload")
        sim.run_until(10.0)
        assert receiver.received == [("payload", 1)]

    def test_unknown_kind_dropped_silently(self):
        sim = make_sim()
        sim.host(2).add_module(Recorder(sim.host(2), kind="other"))
        sim.start()
        sim.host(1).send(2, "msg", "payload")
        sim.run_until(10.0)  # no exception, no delivery

    def test_broadcast_includes_self_via_local_path(self):
        sim = make_sim()
        modules = {
            pid: sim.host(pid).add_module(Recorder(sim.host(pid))) for pid in sim.pids
        }
        sim.start()
        sim.host(1).broadcast([1, 2, 3], "msg", "x")
        sim.run_until(10.0)
        assert all(m.received == [("x", 1)] for m in modules.values())
        # Self-delivery does not traverse the network.
        assert sim.stats.sent_by_link.get((1, 1), 0) == 0

    def test_multiple_subscribers_all_notified(self):
        sim = make_sim()
        a = sim.host(2).add_module(Recorder(sim.host(2)))
        b = sim.host(2).add_module(Recorder(sim.host(2)))
        sim.start()
        sim.host(1).send(2, "msg", 1)
        sim.run_until(5.0)
        assert a.received and b.received


class TestTimers:
    def test_timer_fires(self):
        sim = make_sim()
        fired = []
        sim.start()
        sim.host(1).set_timer(3.0, lambda: fired.append(sim.now))
        sim.run_until(10.0)
        assert fired == [3.0]

    def test_timer_cancel(self):
        sim = make_sim()
        fired = []
        sim.start()
        handle = sim.host(1).set_timer(3.0, lambda: fired.append(1))
        handle.cancel()
        sim.run_until(10.0)
        assert fired == []
        assert not handle.fired

    def test_timer_handle_states(self):
        sim = make_sim()
        sim.start()
        handle = sim.host(1).set_timer(3.0, lambda: None)
        assert handle.active
        sim.run_until(10.0)
        assert handle.fired and not handle.active

    def test_negative_delay_rejected(self):
        sim = make_sim()
        with pytest.raises(SimulationError):
            sim.host(1).set_timer(-1.0, lambda: None)


class TestCrash:
    def test_crashed_host_sends_nothing(self):
        sim = make_sim()
        receiver = sim.host(2).add_module(Recorder(sim.host(2)))
        sim.start()
        sim.host(1).crash()
        sim.host(1).send(2, "msg", "x")
        sim.run_until(10.0)
        assert receiver.received == []

    def test_crashed_host_timers_cancelled(self):
        sim = make_sim()
        fired = []
        sim.start()
        sim.host(1).set_timer(5.0, lambda: fired.append(1))
        sim.at(1.0, lambda: sim.host(1).crash())
        sim.run_until(10.0)
        assert fired == []

    def test_crash_logged(self):
        sim = make_sim()
        sim.start()
        sim.host(1).crash()
        assert sim.log.count("crash", process=1) == 1

    def test_crashed_host_delivers_nothing(self):
        sim = make_sim()
        receiver = sim.host(2).add_module(Recorder(sim.host(2)))
        sim.start()
        sim.host(1).send(2, "msg", "x")
        sim.host(2).crash()
        sim.run_until(10.0)
        assert receiver.received == []


class TestRuntime:
    def test_rejects_empty_system(self):
        with pytest.raises(ConfigurationError):
            Simulation(SimulationConfig(n=0))

    def test_pids_are_one_based(self):
        assert make_sim(4).pids == [1, 2, 3, 4]

    def test_hosts_accessor(self):
        sim = make_sim(2)
        assert set(sim.hosts()) == {1, 2}

    def test_run_until_advances_clock(self):
        sim = make_sim()
        sim.run_until(42.0)
        assert sim.now == 42.0

    def test_at_schedules_harness_action(self):
        sim = make_sim()
        fired = []
        sim.at(5.0, lambda: fired.append(sim.now))
        sim.run_until(10.0)
        assert fired == [5.0]

    def test_determinism_same_seed(self):
        def run(seed):
            sim = Simulation(SimulationConfig(n=3, seed=seed))
            recorder = sim.host(2).add_module(Recorder(sim.host(2)))
            sim.start()
            for i in range(10):
                sim.host(1).send(2, "msg", i)
            sim.run_until(50.0)
            return [e.time for e in sim.log.events()], recorder.received

        assert run(5) == run(5)

    def test_different_seeds_differ(self):
        def delivery_times(seed):
            sim = Simulation(SimulationConfig(n=3, seed=seed))
            times = []
            sim.host(2).subscribe("msg", lambda k, p, s: times.append(sim.now))
            sim.start()
            for i in range(10):
                sim.host(1).send(2, "msg", i)
            sim.run_until(50.0)
            return times

        assert delivery_times(1) != delivery_times(2)

    def test_explicit_latency_model_used(self):
        from repro.sim.latency import FixedLatency

        sim = Simulation(SimulationConfig(n=2, seed=1, latency=FixedLatency(4.0)))
        times = []
        sim.host(2).subscribe("msg", lambda k, p, s: times.append(sim.now))
        sim.start()
        sim.host(1).send(2, "msg", None)
        sim.run_until(10.0)
        assert times == [4.0]
