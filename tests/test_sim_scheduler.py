"""Tests for the discrete-event scheduler, clock, and timer handles."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.scheduler import Scheduler
from repro.util.errors import SimulationError


class TestClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_rejects_backwards(self):
        clock = SimClock(5.0)
        with pytest.raises(SimulationError):
            clock.advance_to(4.0)

    def test_advance_to_same_time_ok(self):
        clock = SimClock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0


class TestScheduling:
    def test_events_fire_in_time_order(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule(3.0, lambda: fired.append("c"))
        scheduler.schedule(1.0, lambda: fired.append("a"))
        scheduler.schedule(2.0, lambda: fired.append("b"))
        scheduler.run_to_quiescence()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        scheduler = Scheduler()
        fired = []
        for tag in "abcde":
            scheduler.schedule(1.0, lambda t=tag: fired.append(t))
        scheduler.run_to_quiescence()
        assert fired == list("abcde")

    def test_clock_advances_with_events(self):
        scheduler = Scheduler()
        seen = []
        scheduler.schedule(2.0, lambda: seen.append(scheduler.now))
        scheduler.run_to_quiescence()
        assert seen == [2.0]

    def test_rejects_negative_delay(self):
        with pytest.raises(SimulationError):
            Scheduler().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        scheduler = Scheduler()
        seen = []
        scheduler.schedule_at(4.0, lambda: seen.append(scheduler.now))
        scheduler.run_to_quiescence()
        assert seen == [4.0]

    def test_nested_scheduling(self):
        scheduler = Scheduler()
        fired = []

        def outer():
            fired.append(("outer", scheduler.now))
            scheduler.schedule(1.0, lambda: fired.append(("inner", scheduler.now)))

        scheduler.schedule(1.0, outer)
        scheduler.run_to_quiescence()
        assert fired == [("outer", 1.0), ("inner", 2.0)]


class TestRunUntil:
    def test_runs_only_due_events(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.schedule(5.0, lambda: fired.append(5))
        scheduler.run_until(3.0)
        assert fired == [1]
        assert scheduler.now == 3.0
        assert scheduler.pending() == 1

    def test_clock_reaches_t_end_even_when_idle(self):
        scheduler = Scheduler()
        scheduler.run_until(7.0)
        assert scheduler.now == 7.0

    def test_event_at_exact_boundary_runs(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule(3.0, lambda: fired.append(1))
        scheduler.run_until(3.0)
        assert fired == [1]


class TestCancellation:
    def test_cancelled_events_skipped(self):
        scheduler = Scheduler()
        fired = []
        event = scheduler.schedule(1.0, lambda: fired.append("x"))
        event.cancelled = True
        scheduler.run_to_quiescence()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        scheduler = Scheduler()
        event = scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(2.0, lambda: None)
        event.cancelled = True
        assert scheduler.pending() == 1

    def test_peek_time_skips_cancelled(self):
        scheduler = Scheduler()
        event = scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(2.0, lambda: None)
        event.cancelled = True
        assert scheduler.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert Scheduler().peek_time() is None


class TestBudget:
    def test_step_budget_raises(self):
        scheduler = Scheduler(max_steps=10)

        def rearm():
            scheduler.schedule(1.0, rearm)

        scheduler.schedule(1.0, rearm)
        with pytest.raises(SimulationError):
            scheduler.run_until(1000.0)

    def test_steps_executed_counts(self):
        scheduler = Scheduler()
        for _ in range(5):
            scheduler.schedule(1.0, lambda: None)
        scheduler.run_to_quiescence()
        assert scheduler.steps_executed == 5
