"""ReliableTransport: ack/retransmit/dedup semantics on lossy links."""

import pytest

from repro.sim.latency import FixedLatency
from repro.sim.network import ChaosConfig, LinkChaos
from repro.sim.runtime import Simulation, SimulationConfig
from repro.sim.transport import ReliableTransport
from repro.util.errors import ConfigurationError


def transport_sim(n=3, seed=1, chaos=None, rto=4.0, max_retries=None):
    sim = Simulation(
        SimulationConfig(n=n, seed=seed, chaos=chaos, latency=FixedLatency(1.0))
    )
    transports = {}
    received = {pid: [] for pid in sim.pids}
    for pid in sim.pids:
        host = sim.host(pid)
        transports[pid] = host.add_module(
            ReliableTransport(host, rto=rto, max_retries=max_retries)
        )
        host.subscribe("app", lambda k, p, s, pid=pid: received[pid].append((p, s)))
    sim.start()
    return sim, transports, received


class TestValidation:
    def test_bad_parameters_rejected(self):
        sim = Simulation(SimulationConfig(n=2, seed=1))
        host = sim.host(1)
        for kwargs in (dict(rto=0.0), dict(backoff=0.5), dict(max_rto=-1.0), dict(max_retries=-1)):
            with pytest.raises(ConfigurationError):
                ReliableTransport(host, **kwargs)

    def test_self_send_rejected(self):
        sim, transports, _ = transport_sim()
        with pytest.raises(ConfigurationError):
            transports[1].send(1, "app", "hello-me")


class TestReliableDelivery:
    def test_clean_link_delivers_once_and_acks_stop_resends(self):
        sim, transports, received = transport_sim()
        transports[1].send(2, "app", "hello")
        sim.run_until(100.0)
        assert received[2] == [("hello", 1)]
        assert transports[1].retransmissions == 0
        assert transports[1].acks_received == 1
        assert transports[1].pending_count() == 0

    def test_lost_data_is_retransmitted_until_through(self):
        # Only the 1->2 data direction is lossy, and only for a while: the
        # first copies vanish, the backoff retries land after the link heals.
        chaos = ChaosConfig(links={(1, 2): LinkChaos(drop=1.0)})
        sim, transports, received = transport_sim(chaos=chaos)
        transports[1].send(2, "app", "persistent")
        sim.run_until(10.0)
        assert received[2] == []
        assert transports[1].retransmissions >= 1
        # "Heal" the link by flipping the chaos switch off mid-run.
        sim.network._chaos_active = False
        sim.run_until(200.0)
        assert received[2] == [("persistent", 1)]
        assert transports[1].pending_count() == 0

    def test_lost_ack_causes_duplicate_which_is_suppressed(self):
        # Data gets through; every ack (2->1) is lost, so p1 retransmits
        # and p2 must suppress the duplicates.
        chaos = ChaosConfig(links={(2, 1): LinkChaos(drop=1.0)})
        sim, transports, received = transport_sim(chaos=chaos)
        transports[1].send(2, "app", "once-only")
        sim.run_until(60.0)
        assert received[2] == [("once-only", 1)]
        assert transports[1].retransmissions >= 1
        assert transports[2].duplicates_suppressed >= 1

    def test_backoff_doubles_up_to_cap(self):
        sim = Simulation(
            SimulationConfig(n=2, seed=1, chaos=ChaosConfig(drop=1.0),
                             latency=FixedLatency(1.0))
        )
        host = sim.host(1)
        transport = host.add_module(ReliableTransport(host, rto=2.0, max_rto=10.0))
        sim.start()
        transport.send(2, "app", "void")
        sim.run_until(100.0)
        entry = next(iter(transport._pending.values()))
        assert entry.rto == 10.0  # 2 -> 4 -> 8 -> 10 (capped)
        assert transport.retransmissions >= 4

    def test_max_retries_abandons_and_logs(self):
        sim, transports, received = transport_sim(
            chaos=ChaosConfig(drop=1.0), max_retries=3
        )
        transports[1].send(2, "app", "doomed")
        sim.run_until(500.0)
        assert received[2] == []
        assert transports[1].abandoned == 1
        assert transports[1].pending_count() == 0
        assert sim.log.count("rel.giveup", process=1) == 1

    def test_out_of_order_window_drains_into_floor(self):
        sim, transports, received = transport_sim()
        for i in range(5):
            transports[1].send(2, "app", i)
        sim.run_until(100.0)
        assert [p for p, _ in received[2]] == [0, 1, 2, 3, 4]
        assert transports[2]._recv_floor[1] == 5
        assert transports[2]._recv_window.get(1, set()) == set()

    def test_garbage_wrappers_ignored(self):
        sim, transports, received = transport_sim()
        # A Byzantine peer can address rel.data/rel.ack with arbitrary junk.
        sim.host(1).send(2, "rel.data", "not-a-tuple")
        sim.host(1).send(2, "rel.data", (0, "app", "bad-seq"))
        sim.host(1).send(2, "rel.data", (True, "app", "bool-seq"))
        sim.host(1).send(2, "rel.ack", "not-an-int")
        sim.run_until(50.0)
        assert received[2] == []
        assert transports[2].delivered == 0


class TestCrashRecovery:
    def test_recover_rearms_pending_retransmissions(self):
        # p1 sends while the link drops everything, then crashes (killing
        # the retransmit timer), then recovers after the link is clean:
        # the pending message must still go out.
        chaos = ChaosConfig(links={(1, 2): LinkChaos(drop=1.0)})
        sim, transports, received = transport_sim(chaos=chaos)
        transports[1].send(2, "app", "survivor")
        sim.at(6.0, lambda: sim.host(1).crash())
        sim.at(20.0, lambda: sim.network.__setattr__("_chaos_active", False))
        sim.at(30.0, lambda: sim.host(1).recover())
        sim.run_until(200.0)
        assert received[2] == [("survivor", 1)]
        assert transports[1].pending_count() == 0
