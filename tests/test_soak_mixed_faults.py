"""Soak test: one long run through every failure class, phase by phase.

A single n=7, f=2 world lives through five regimes — pre-GST asynchrony,
a crash, a partition-and-heal, a per-link mute, recovery — with the
invariants re-checked after each phase.  This is the closest the suite
gets to "a week in production", compressed into one deterministic run.
"""

import pytest

from repro.core.spec import agreement_holds, no_suspicion_holds
from repro.failures.adversary import Adversary
from repro.fd.properties import eventual_strong_accuracy_holds
from tests.conftest import build_qs_world

N, F = 7, 2
PHASES = {
    "stabilize": 150.0,     # pre-GST noise (GST at 40) settles
    "crash": 300.0,         # p1 crashes at 160
    "partition": 520.0,     # {6,7} partitioned at 320, healed at 420
    "mute-link": 740.0,     # p2 mutes heartbeats to p3 from 540
    "recovery": 950.0,      # p1 recovers at 760
}


@pytest.fixture(scope="module")
def soak_world():
    sim, modules = build_qs_world(N, F, seed=23, gst=40.0, base_timeout=4.0)
    adversary = Adversary(sim)
    sim.at(160.0, lambda: sim.host(1).crash())
    sim.at(320.0, lambda: sim.network.partition({1, 2, 3, 4, 5}, {6, 7}))
    sim.at(420.0, lambda: sim.network.heal())
    adversary.omit_links(2, dsts={3}, kinds={"heartbeat"}, start=540.0)
    sim.at(760.0, lambda: sim.host(1).recover())

    snapshots = {}
    for name, until in PHASES.items():
        sim.run_until(until)
        snapshots[name] = {
            pid: (modules[pid].qlast, modules[pid].epoch)
            for pid in sim.pids
            if sim.host(pid).running
        }
    return sim, modules, adversary, snapshots


def correct_modules(sim, modules, *, exclude=()):
    return [
        modules[pid] for pid in sim.pids
        if sim.host(pid).running and pid not in exclude
    ]


class TestSoak:
    def test_stabilize_phase_reaches_default(self, soak_world):
        _, _, _, snapshots = soak_world
        quorums = {q for q, _ in snapshots["stabilize"].values()}
        assert len(quorums) == 1  # pre-GST noise settled on one quorum

    def test_crash_phase_excludes_p1(self, soak_world):
        _, _, _, snapshots = soak_world
        quorums = {q for q, _ in snapshots["crash"].values()}
        assert len(quorums) == 1
        assert 1 not in quorums.pop()

    def test_partition_healed_and_agreed(self, soak_world):
        _, _, _, snapshots = soak_world
        quorums = {q for q, _ in snapshots["partition"].values()}
        assert len(quorums) == 1  # minority side re-converged after heal

    def test_mute_link_splits_pair(self, soak_world):
        _, _, _, snapshots = soak_world
        quorums = {q for q, _ in snapshots["mute-link"].values()}
        assert len(quorums) == 1
        assert not {2, 3} <= quorums.pop()

    def test_final_state_sound(self, soak_world):
        sim, modules, adversary, _ = soak_world
        correct = correct_modules(sim, modules, exclude={2})  # p2 is faulty
        assert agreement_holds(correct)
        assert no_suspicion_holds(correct)
        # The recovered p1 converged to the same matrix as everyone else.
        assert modules[1].matrix == modules[4].matrix

    def test_epochs_converged(self, soak_world):
        sim, modules, _, _ = soak_world
        epochs = {modules[pid].epoch for pid in sim.pids if sim.host(pid).running}
        assert len(epochs) == 1

    def test_accuracy_restored_each_quiet_period(self, soak_world):
        sim, _, adversary, _ = soak_world
        correct = [p for p in sim.pids if p not in (1, 2)]  # exclude churners
        # The last 150 units are fault-quiet: no correct-correct raises.
        assert eventual_strong_accuracy_holds(sim.log, correct, after=800.0)

    def test_step_budget_sane(self, soak_world):
        sim, _, _, _ = soak_world
        # ~950 time units, 7 processes: the run stays well within budget
        # (no event storms from any phase).
        assert sim.scheduler.steps_executed < 400_000
