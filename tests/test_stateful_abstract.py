"""Stateful property-based testing of the single-epoch models.

Hypothesis drives random legal adversary moves (suspicion edges with at
least one faulty endpoint) against the abstract Algorithm-1 and
Chain-Selection models and checks the paper's invariants after every
step:

- the selected quorum is always an independent set of size ``q`` and is
  lexicographically minimal (Algorithm 1, line 31);
- a new edge *inside* the current quorum always forces a change (the
  no-suspicion property / Lemma 2), an edge with both endpoints outside
  never does;
- total changes never exceed Theorem 3's ``f (f+1)`` bound;
- the chain variant keeps a valid conflict-free chain and only reacts to
  edges on current links.
"""

import itertools

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.analysis.abstract import AbstractChainSelection, AbstractQuorumSelection
from repro.analysis.bounds import thm3_upper_bound
from repro.graphs.chain_path import is_valid_chain, sensitive_pairs
from repro.graphs.independent_set import lex_first_independent_set
from repro.util.errors import ConfigurationError

N, F = 6, 2
FAULTY = frozenset({1, 2})


def legal_moves(model):
    """New edges with at least one faulty endpoint."""
    return [
        (a, b)
        for a, b in itertools.combinations(range(1, model.n + 1), 2)
        if (a in FAULTY or b in FAULTY) and not model.graph.has_edge(a, b)
    ]


class QuorumSelectionMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.model = AbstractQuorumSelection(N, F)

    @rule(data=st.data())
    def adversary_move(self, data):
        moves = legal_moves(self.model)
        if not moves:  # adversary exhausted: further steps are no-ops
            return
        a, b = data.draw(st.sampled_from(moves))
        in_quorum = a in self.model.quorum and b in self.model.quorum
        outside = a not in self.model.quorum and b not in self.model.quorum
        changed = self.model.add_suspicion(a, b)
        if in_quorum:
            assert changed, "edge inside the quorum must invalidate it"
        if outside:
            assert not changed, "edge fully outside the quorum must be ignored"

    @invariant()
    def quorum_is_lex_first_independent_set(self):
        model = self.model
        assert len(model.quorum) == model.q
        assert model.graph.is_independent(model.quorum)
        assert model.quorum == lex_first_independent_set(model.graph, model.q)

    @invariant()
    def changes_respect_theorem_3(self):
        assert self.model.changes <= thm3_upper_bound(F)


class ChainSelectionMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.model = AbstractChainSelection(N, F)

    @rule(data=st.data())
    def adversary_move(self, data):
        moves = legal_moves(self.model)
        if not moves:  # adversary exhausted: further steps are no-ops
            return
        a, b = data.draw(st.sampled_from(moves))
        was_link = (min(a, b), max(a, b)) in sensitive_pairs(self.model.chain)
        try:
            changed = self.model.add_suspicion(a, b)
        except ConfigurationError:
            # No chain left: only reachable when the adversary saturates
            # the graph; the machine simply stops making progress.
            return
        if was_link:
            assert changed, "a suspicion on a current link must re-chain"

    @invariant()
    def chain_is_valid_and_sized(self):
        model = self.model
        assert len(model.chain) == model.q
        assert is_valid_chain(model.chain, model.graph)


TestQuorumSelectionStateful = QuorumSelectionMachine.TestCase
TestQuorumSelectionStateful.settings = settings(
    max_examples=40, stateful_step_count=20, deadline=None
)

TestChainSelectionStateful = ChainSelectionMachine.TestCase
TestChainSelectionStateful.settings = settings(
    max_examples=40, stateful_step_count=20, deadline=None
)
