"""Validation and plumbing tests for the system builders."""

import pytest

from repro.util.errors import ConfigurationError
from repro.xpaxos.system import XPaxosSystem, build_system


class TestBuildSystemValidation:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            build_system(n=5, f=2, mode="telepathy")

    def test_rejects_negative_clients(self):
        with pytest.raises(ConfigurationError):
            build_system(n=5, f=2, clients=-1)

    def test_rejects_undersized_n(self):
        with pytest.raises(ConfigurationError):
            build_system(n=4, f=2)

    def test_selection_mode_has_qs_modules(self):
        system = build_system(n=5, f=2, mode="selection")
        assert set(system.qs_modules) == {1, 2, 3, 4, 5}

    def test_enumeration_mode_has_none(self):
        system = build_system(n=5, f=2, mode="enumeration")
        assert system.qs_modules == {}

    def test_heartbeats_can_be_disabled(self):
        system = build_system(n=5, f=2, clients=0, heartbeats=False, seed=1)
        system.run(30.0)
        assert system.sim.stats.sent_by_kind.get("heartbeat", 0) == 0

    def test_client_pids_follow_replicas(self):
        system = build_system(n=5, f=2, clients=3)
        assert sorted(system.clients) == [6, 7, 8]

    def test_adversary_budget_is_f(self):
        system = build_system(n=5, f=2)
        system.adversary.corrupt(1)
        system.adversary.corrupt(2)
        with pytest.raises(ConfigurationError):
            system.adversary.corrupt(3)


class TestSystemDiagnostics:
    def test_correct_replicas_excludes_faulty(self):
        system = build_system(n=5, f=2)
        system.adversary.corrupt(2)
        pids = [replica.pid for replica in system.correct_replicas()]
        assert pids == [1, 3, 4, 5]

    def test_inter_replica_messages_excludes_clients(self):
        system = build_system(n=5, f=2, clients=1, seed=3,
                              client_ops=[[("put", "k", 1)]])
        system.run(60.0)
        inter = system.inter_replica_messages()
        total = system.sim.stats.total_sent()
        assert 0 < inter < total  # requests/replies to the client excluded

    def test_histories_consistent_detects_forks(self):
        system = build_system(n=5, f=2, clients=1, seed=3,
                              client_ops=[[("put", "k", 1)]])
        system.run(60.0)
        assert system.histories_consistent()
        # Manually fork one replica's history: must be flagged.
        from repro.xpaxos.messages import ClientRequest

        system.replicas[2].executed[0] = ClientRequest(9, 9, ("put", "evil", 1))
        assert not system.histories_consistent()
