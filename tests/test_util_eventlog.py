"""Tests for the structured event log."""

from repro.util.eventlog import EventLog, LoggedEvent


def make_log():
    log = EventLog()
    log.append(1.0, 1, "fd.suspect", target=3)
    log.append(2.0, 2, "fd.suspect", target=3)
    log.append(3.0, 1, "fd.unsuspect", target=3)
    log.append(4.0, 1, "qs.quorum", quorum=(1, 2))
    return log


class TestAppendAndQuery:
    def test_len(self):
        assert len(make_log()) == 4

    def test_iteration_preserves_order(self):
        times = [event.time for event in make_log()]
        assert times == [1.0, 2.0, 3.0, 4.0]

    def test_filter_by_kind(self):
        assert len(make_log().events(kind="fd.suspect")) == 2

    def test_filter_by_process(self):
        assert len(make_log().events(process=1)) == 3

    def test_filter_by_predicate(self):
        events = make_log().events(predicate=lambda e: e.payload.get("target") == 3)
        assert len(events) == 3

    def test_combined_filters(self):
        events = make_log().events(kind="fd.suspect", process=2)
        assert len(events) == 1
        assert events[0].time == 2.0

    def test_count(self):
        log = make_log()
        assert log.count("fd.suspect") == 2
        assert log.count("fd.suspect", process=1) == 1
        assert log.count("missing") == 0

    def test_last(self):
        log = make_log()
        assert log.last("fd.suspect").time == 2.0
        assert log.last("nope") is None

    def test_append_returns_event(self):
        log = EventLog()
        event = log.append(5.0, 2, "x", a=1)
        assert isinstance(event, LoggedEvent)
        assert event.payload == {"a": 1}


class TestRendering:
    def test_describe_contains_fields(self):
        event = LoggedEvent(1.5, 3, "qs.quorum", {"epoch": 2})
        text = event.describe()
        assert "p3" in text and "qs.quorum" in text and "epoch=2" in text

    def test_describe_system_event(self):
        event = LoggedEvent(0.0, 0, "adv.corrupt", {})
        assert "sys" in event.describe()

    def test_render_filters_kinds(self):
        text = make_log().render("qs.quorum")
        assert "qs.quorum" in text
        assert "fd.suspect" not in text

    def test_render_all(self):
        assert len(make_log().render().splitlines()) == 4
