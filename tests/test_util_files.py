"""Regression tests for the atomic text-write helper (torn Prometheus files)."""

import os

import pytest

from repro.util.files import atomic_write_text


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "metrics.prom"
        atomic_write_text(target, "qs_epoch 3\n")
        assert target.read_text() == "qs_epoch 3\n"

    def test_overwrites_previous_content(self, tmp_path):
        target = tmp_path / "metrics.prom"
        atomic_write_text(target, "old\n")
        atomic_write_text(target, "new\n")
        assert target.read_text() == "new\n"
        # No tmp droppings left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["metrics.prom"]

    def test_interrupt_mid_write_never_exposes_partial_file(self, tmp_path, monkeypatch):
        # Simulate a crash after the tmp file is partially written but before
        # the rename: the destination must still hold the previous complete
        # content, never a prefix of the new one.
        target = tmp_path / "metrics.prom"
        atomic_write_text(target, "complete v1\n")

        import pathlib

        original_write_text = pathlib.Path.write_text

        def interrupted_write_text(self, text, *args, **kwargs):
            original_write_text(self, text[: len(text) // 2], *args, **kwargs)
            raise KeyboardInterrupt("simulated interrupt mid-write")

        monkeypatch.setattr(pathlib.Path, "write_text", interrupted_write_text)
        with pytest.raises(KeyboardInterrupt):
            atomic_write_text(target, "complete v2 that never lands\n")
        monkeypatch.undo()

        assert target.read_text() == "complete v1\n"
        assert [p.name for p in tmp_path.iterdir()] == ["metrics.prom"]

    def test_interrupt_before_replace_keeps_previous_file(self, tmp_path, monkeypatch):
        # Crash between the (complete) tmp write and the rename: previous
        # file stays visible, the stale tmp file is cleaned up.
        target = tmp_path / "metrics.prom"
        atomic_write_text(target, "complete v1\n")

        def failing_replace(src, dst, *args, **kwargs):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError):
            atomic_write_text(target, "complete v2\n")
        monkeypatch.undo()

        assert target.read_text() == "complete v1\n"
        assert [p.name for p in tmp_path.iterdir()] == ["metrics.prom"]

    def test_node_prometheus_export_uses_atomic_write(self):
        # The torn-write site in net/node.py must go through the helper.
        import inspect

        from repro.net import node

        source = inspect.getsource(node.run_node)
        assert "atomic_write_text" in source
        assert 'open(config.metrics_prom_path, "w")' not in source
