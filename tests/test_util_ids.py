"""Tests for process identifiers and quorum ordering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.errors import ConfigurationError
from repro.util.ids import (
    all_processes,
    default_quorum,
    format_pid,
    format_pset,
    lexicographic_min_quorum,
    ordered,
    quorum_sort_key,
    validate_pid,
)


class TestValidatePid:
    def test_accepts_valid_pid(self):
        assert validate_pid(1) == 1
        assert validate_pid(7, n=10) == 7

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            validate_pid(0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            validate_pid(-3)

    def test_rejects_above_n(self):
        with pytest.raises(ConfigurationError):
            validate_pid(11, n=10)

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            validate_pid(True)

    def test_rejects_non_int(self):
        with pytest.raises(ConfigurationError):
            validate_pid("p1")


class TestAllProcesses:
    def test_small_system(self):
        assert all_processes(3) == frozenset({1, 2, 3})

    def test_single_process(self):
        assert all_processes(1) == frozenset({1})

    def test_rejects_empty_system(self):
        with pytest.raises(ConfigurationError):
            all_processes(0)


class TestQuorumOrdering:
    def test_paper_example_order(self):
        # Section VI-B order: {1,3,4} < {1,3,5} < {2,3,4}.
        assert quorum_sort_key({1, 3, 4}) < quorum_sort_key({1, 3, 5})
        assert quorum_sort_key({1, 3, 5}) < quorum_sort_key({2, 3, 4})

    def test_key_is_sorted_tuple(self):
        assert quorum_sort_key([3, 1, 2]) == (1, 2, 3)

    def test_min_quorum(self):
        quorums = [{2, 3, 4}, {1, 3, 5}, {1, 3, 4}]
        assert lexicographic_min_quorum(quorums) == frozenset({1, 3, 4})

    def test_min_quorum_single(self):
        assert lexicographic_min_quorum([{5, 6}]) == frozenset({5, 6})

    def test_min_quorum_empty_raises(self):
        with pytest.raises(ConfigurationError):
            lexicographic_min_quorum([])

    @given(st.lists(st.frozensets(st.integers(1, 9), min_size=1, max_size=4), min_size=1, max_size=8))
    def test_min_quorum_is_minimal(self, quorums):
        chosen = lexicographic_min_quorum(quorums)
        for quorum in quorums:
            assert quorum_sort_key(chosen) <= quorum_sort_key(quorum)


class TestFormatting:
    def test_format_pid(self):
        assert format_pid(3) == "p3"

    def test_format_pset_sorted(self):
        assert format_pset([3, 1, 2]) == "{p1, p2, p3}"

    def test_format_pset_empty(self):
        assert format_pset([]) == "{}"


class TestDefaultQuorum:
    def test_initial_quorum(self):
        # Algorithm 1 state: Qlast = {p_1, .., p_q}.
        assert default_quorum(5, 3) == frozenset({1, 2, 3})

    def test_full_quorum(self):
        assert default_quorum(4, 4) == frozenset({1, 2, 3, 4})

    def test_rejects_oversized(self):
        with pytest.raises(ConfigurationError):
            default_quorum(3, 4)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            default_quorum(3, 0)


def test_ordered_returns_sorted_list():
    assert ordered({4, 1, 3}) == [1, 3, 4]
