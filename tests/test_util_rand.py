"""Tests for deterministic RNG derivation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.rand import DeterministicRng, derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "network") == derive_seed(42, "network")

    def test_different_names_different_seeds(self):
        assert derive_seed(42, "network") != derive_seed(42, "adversary")

    def test_different_roots_different_seeds(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_path_depth_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "a")

    @given(st.integers(0, 2**32), st.text(max_size=10))
    def test_seed_in_64_bit_range(self, root, name):
        assert 0 <= derive_seed(root, name) < 2**64


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_children_are_independent_of_sibling_creation(self):
        root1 = DeterministicRng(7)
        child_a1 = root1.child("a")
        root2 = DeterministicRng(7)
        root2.child("b")  # creating an unrelated sibling first
        child_a2 = root2.child("a")
        assert [child_a1.random() for _ in range(3)] == [
            child_a2.random() for _ in range(3)
        ]

    def test_child_name_path(self):
        rng = DeterministicRng(7, "root").child("net", 3)
        assert rng.name == "root/net/3"

    def test_uniform_bounds(self):
        rng = DeterministicRng(1)
        for _ in range(100):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_randint_bounds(self):
        rng = DeterministicRng(1)
        values = {rng.randint(1, 3) for _ in range(100)}
        assert values == {1, 2, 3}

    def test_choice_and_sample(self):
        rng = DeterministicRng(1)
        assert rng.choice([5]) == 5
        assert sorted(rng.sample(range(10), 10)) == list(range(10))

    def test_coin_extremes(self):
        rng = DeterministicRng(1)
        assert not any(rng.coin(0.0) for _ in range(20))
        assert all(rng.coin(1.0) for _ in range(20))

    def test_shuffle_permutes(self):
        rng = DeterministicRng(3)
        items = list(range(20))
        rng.shuffle(items)
        assert sorted(items) == list(range(20))

    def test_expovariate_positive(self):
        rng = DeterministicRng(1)
        assert all(rng.expovariate(2.0) >= 0 for _ in range(50))


class TestMakeRng:
    def test_none_seed_is_fixed_default(self):
        assert make_rng(None).seed == make_rng(None).seed

    def test_explicit_seed(self):
        assert make_rng(123).seed == 123
