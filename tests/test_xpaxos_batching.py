"""Tests for leader-side request batching."""

import pytest

from repro.util.errors import ConfigurationError
from repro.xpaxos.messages import KIND_PREPARE
from repro.xpaxos.system import build_system


def agreement_messages(system):
    return system.sim.stats.total_sent(["xp.prepare", "xp.commit"])


class TestBatchingCorrectness:
    def test_batched_run_completes_and_agrees(self):
        system = build_system(n=5, f=2, clients=4, seed=7, batch_size=4, batch_window=1.0)
        system.run(600.0)
        assert system.total_completed() == 80
        assert system.histories_consistent()

    def test_batched_slots_carry_multiple_requests(self):
        system = build_system(n=5, f=2, clients=4, seed=7, batch_size=4, batch_window=1.0)
        system.run(600.0)
        leader = system.replicas[1]
        # Fewer slots than requests: batching actually happened.
        assert len(leader.executed_certs) < len(leader.executed)
        # And every certificate covers its whole batch.
        covered = sum(
            len(cert.prepare.payload.requests) for cert in leader.executed_certs
        )
        assert covered == len(leader.executed)

    def test_batching_reduces_agreement_messages(self):
        def run(batch_size, batch_window):
            system = build_system(
                n=5, f=2, clients=4, seed=7,
                batch_size=batch_size, batch_window=batch_window,
            )
            system.run(600.0)
            assert system.total_completed() == 80
            return agreement_messages(system)

        unbatched = run(1, 0.0)
        batched = run(4, 1.0)
        assert batched < unbatched

    def test_replies_still_per_request(self):
        system = build_system(n=5, f=2, clients=2, seed=7, batch_size=8, batch_window=1.0)
        system.run(600.0)
        for client in system.clients.values():
            sequences = [entry[0] for entry in client.completed]
            assert sequences == sorted(set(sequences))
            assert len(sequences) == 20

    def test_batch_survives_view_change(self):
        system = build_system(
            n=5, f=2, mode="selection", clients=2, seed=9,
            batch_size=4, batch_window=1.0, client_think_time=3.0,
        )
        system.adversary.crash(1, at=30.0)
        system.run(900.0)
        assert system.total_completed() == 40
        assert system.histories_consistent()
        # Certificates for batched slots verify at the replicas that
        # installed them via NEW-VIEW.
        from repro.xpaxos.messages import certificate_is_valid

        replica = system.replicas[4]
        verify = system.sim.host(4).authenticator.verify
        for index, cert in enumerate(replica.executed_certs):
            assert certificate_is_valid(cert, index, replica.policy.quorum_of, verify)

    def test_default_batching_is_one_per_slot(self):
        system = build_system(n=5, f=2, clients=1, seed=7)
        system.run(300.0)
        leader = system.replicas[1]
        assert len(leader.executed_certs) == len(leader.executed)


class TestBatchingConfiguration:
    def test_rejects_bad_batch_size(self):
        with pytest.raises(ConfigurationError):
            build_system(n=5, f=2, batch_size=0)

    def test_rejects_negative_window(self):
        with pytest.raises(ConfigurationError):
            build_system(n=5, f=2, batch_window=-1.0)
