"""Commit certificates: view-change state transfer cannot be poisoned.

The simplified view change exchanges committed histories; without
certificates a Byzantine participant could fabricate "committed"
requests or invent leader PREPAREs.  These tests pin the verifier
(:func:`certificate_is_valid`) and demonstrate the attack failing end to
end.
"""

import pytest

from repro.crypto.authenticator import SignedMessage
from repro.xpaxos.enumeration import quorum_for_view
from repro.xpaxos.messages import (
    KIND_VIEWCHANGE,
    ClientRequest,
    CommitCertificate,
    CommitPayload,
    PreparePayload,
    ViewChangePayload,
    certificate_is_valid,
)
from repro.xpaxos.system import build_system


def make_world():
    system = build_system(n=5, f=2, clients=1, seed=1, client_ops=[[]])
    system.sim.start()
    return system


def quorum_of(view):
    return quorum_for_view(view, 5, 3)


def build_valid_certificate(system, view=0, slot=0, op=("put", "k", 1)):
    """Manufacture a genuine certificate using the real keys."""
    client = system.sim.host(6)
    leader_pid = min(quorum_of(view))
    leader = system.sim.host(leader_pid)
    signed_request = client.authenticator.sign(
        ClientRequest(client=6, sequence=slot, op=op)
    )
    prepare = leader.authenticator.sign(
        PreparePayload(view=view, slot=slot, signed_requests=(signed_request,))
    )
    commits = tuple(
        system.sim.host(member).authenticator.sign(
            CommitPayload(view=view, slot=slot, prepare=prepare)
        )
        for member in sorted(quorum_of(view) - {leader_pid})
    )
    return CommitCertificate(prepare=prepare, commits=commits)


class TestCertificateVerifier:
    def setup_method(self):
        self.system = make_world()
        self.verify = self.system.sim.host(4).authenticator.verify

    def test_genuine_certificate_validates(self):
        cert = build_valid_certificate(self.system)
        assert certificate_is_valid(cert, 0, quorum_of, self.verify)

    def test_wrong_slot_rejected(self):
        cert = build_valid_certificate(self.system, slot=0)
        assert not certificate_is_valid(cert, 1, quorum_of, self.verify)

    def test_missing_commit_rejected(self):
        cert = build_valid_certificate(self.system)
        truncated = CommitCertificate(prepare=cert.prepare, commits=cert.commits[:1])
        assert not certificate_is_valid(truncated, 0, quorum_of, self.verify)

    def test_duplicate_commit_does_not_substitute(self):
        cert = build_valid_certificate(self.system)
        padded = CommitCertificate(
            prepare=cert.prepare, commits=(cert.commits[0], cert.commits[0])
        )
        assert not certificate_is_valid(padded, 0, quorum_of, self.verify)

    def test_prepare_not_from_view_leader_rejected(self):
        # p2 (a follower) signs the PREPARE instead of the view-0 leader.
        system = self.system
        client = system.sim.host(6)
        impostor = system.sim.host(2)
        signed_request = client.authenticator.sign(
            ClientRequest(client=6, sequence=0, op=("noop",))
        )
        prepare = impostor.authenticator.sign(
            PreparePayload(view=0, slot=0, signed_requests=(signed_request,))
        )
        commits = tuple(
            system.sim.host(member).authenticator.sign(
                CommitPayload(view=0, slot=0, prepare=prepare)
            )
            for member in (2, 3)
        )
        cert = CommitCertificate(prepare=prepare, commits=commits)
        assert not certificate_is_valid(cert, 0, quorum_of, self.verify)

    def test_unsigned_client_request_rejected(self):
        # The leader fabricates a request the client never signed.
        system = self.system
        leader = system.sim.host(1)
        forged_request = leader.authenticator.sign(  # wrong signer
            ClientRequest(client=6, sequence=0, op=("put", "stolen", 1))
        )
        prepare = leader.authenticator.sign(
            PreparePayload(view=0, slot=0, signed_requests=(forged_request,))
        )
        commits = tuple(
            system.sim.host(member).authenticator.sign(
                CommitPayload(view=0, slot=0, prepare=prepare)
            )
            for member in (2, 3)
        )
        cert = CommitCertificate(prepare=prepare, commits=commits)
        assert not certificate_is_valid(cert, 0, quorum_of, self.verify)

    def test_commit_digest_mismatch_rejected(self):
        # Commits refer to a different request than the certificate's
        # PREPARE: mix-and-match across slots must fail.
        cert_a = build_valid_certificate(self.system, slot=0, op=("put", "a", 1))
        cert_b = build_valid_certificate(self.system, slot=0, op=("put", "b", 2))
        frankenstein = CommitCertificate(
            prepare=cert_a.prepare, commits=cert_b.commits
        )
        assert not certificate_is_valid(frankenstein, 0, quorum_of, self.verify)

    def test_commit_from_outside_quorum_rejected(self):
        system = self.system
        cert = build_valid_certificate(system)
        outsider_commit = system.sim.host(5).authenticator.sign(  # 5 not in {1,2,3}
            CommitPayload(view=0, slot=0, prepare=cert.prepare)
        )
        cert2 = CommitCertificate(
            prepare=cert.prepare, commits=(cert.commits[0], outsider_commit)
        )
        assert not certificate_is_valid(cert2, 0, quorum_of, self.verify)


class TestForgedViewChangeEndToEnd:
    def test_byzantine_vc_cannot_inject_history(self):
        # p5 sends a VIEW-CHANGE claiming a long "committed" history with
        # uncertified entries; the new leader must ignore it — no replica
        # ever executes the fabricated operation.
        system = build_system(n=5, f=2, mode="enumeration", clients=1, seed=13)
        system.sim.start()
        byz = system.sim.host(5)
        # Fabricated entries: not even certificate-shaped.
        forged = ViewChangePayload(
            new_view=1,
            committed=("fake-entry-1", "fake-entry-2"),
            prepared=(),
        )
        signed = byz.authenticator.sign(forged)
        for dst in (1, 2, 3, 4):
            byz.send(dst, KIND_VIEWCHANGE, signed)
        system.run(600.0)
        assert system.total_completed() == 20
        assert system.histories_consistent()
        for pid in (1, 2, 3, 4):
            for op in system.replicas[pid].kv.history:
                assert op[0] in ("put", "get", "del", "noop")
        assert system.sim.log.count("xp.divergence") == 0

    def test_real_certificates_travel_through_view_change(self):
        system = build_system(n=5, f=2, mode="selection", clients=1, seed=9)
        system.adversary.crash(1, at=30.0)
        system.run(800.0)
        assert system.total_completed() == 20
        # A replica that joined via NEW-VIEW holds verifiable certificates
        # for its whole history.
        replica = system.replicas[4]
        assert len(replica.executed_certs) == len(replica.executed)
        verify = system.sim.host(4).authenticator.verify
        for index, cert in enumerate(replica.executed_certs):
            assert certificate_is_valid(
                cert, index, replica.policy.quorum_of, verify
            )
