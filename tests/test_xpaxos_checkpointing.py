"""Checkpointing / log compaction tests."""

import pytest

from repro.crypto.digests import digest
from repro.util.errors import ConfigurationError
from repro.xpaxos.messages import (
    CheckpointCertificate,
    CheckpointPayload,
    checkpoint_certificate_is_valid,
)
from repro.xpaxos.system import build_system


class TestCheckpointFormation:
    def test_certificates_truncated_at_interval(self):
        system = build_system(n=5, f=2, clients=2, seed=7, checkpoint_interval=10)
        system.run(600.0)
        assert system.total_completed() == 40
        for pid in (1, 2, 3):  # the active quorum
            replica = system.replicas[pid]
            assert replica.checkpoints_made >= 3
            assert replica.checkpoint_slot >= 30
            # The live certificate log stays bounded by the interval.
            assert len(replica.executed_certs) < 10 + 1
            # ...while the flat history is complete.
            assert len(replica.executed) == 40

    def test_no_checkpoints_when_disabled(self):
        system = build_system(n=5, f=2, clients=1, seed=7)
        system.run(300.0)
        replica = system.replicas[1]
        assert replica.checkpoints_made == 0
        assert replica.checkpoint is None
        assert len(replica.executed_certs) == len(replica.executed)

    def test_checkpoint_digest_matches_snapshot(self):
        system = build_system(n=5, f=2, clients=1, seed=7, checkpoint_interval=5)
        system.run(400.0)
        replica = system.replicas[2]
        assert replica.checkpoint is not None
        certificate, snapshot = replica.checkpoint
        assert digest(snapshot) == certificate.payload.state_digest
        assert checkpoint_certificate_is_valid(
            certificate, replica.policy.quorum_of, system.sim.host(2).authenticator.verify
        )

    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigurationError):
            build_system(n=5, f=2, checkpoint_interval=0)


class TestCheckpointAcrossViewChange:
    def test_crash_recovery_with_checkpoints(self):
        system = build_system(
            n=5, f=2, mode="selection", clients=2, seed=9,
            checkpoint_interval=5, client_think_time=3.0,
        )
        system.adversary.crash(1, at=60.0)
        system.run(1200.0)
        assert system.total_completed() == 40
        assert system.histories_consistent()
        assert system.sim.log.count("xp.divergence") == 0

    def test_passive_replica_adopts_snapshot(self):
        # p4/p5 were passive all through view 0; after the view change
        # they join a quorum and must catch up — with checkpointing the
        # catch-up goes through snapshot adoption for the stable prefix.
        system = build_system(
            n=5, f=2, mode="selection", clients=2, seed=9,
            checkpoint_interval=5, client_think_time=3.0,
        )
        system.adversary.crash(1, at=60.0)
        system.run(1200.0)
        adopted = system.sim.log.count("xp.snapshot-adopted")
        assert adopted >= 1
        # The adopting replicas ended with the full flat history.
        for replica in system.correct_replicas():
            if replica.pid in replica.quorum:
                assert len(replica.executed) == 40

    def test_kv_state_identical_after_snapshot_adoption(self):
        system = build_system(
            n=5, f=2, mode="selection", clients=2, seed=9,
            checkpoint_interval=5, client_think_time=3.0,
        )
        system.adversary.crash(1, at=60.0)
        system.run(1200.0)
        digests = {
            replica.kv.state_digest()
            for replica in system.correct_replicas()
            if len(replica.executed) == 40
        }
        assert len(digests) == 1


class TestCheckpointCertificateValidation:
    def setup_method(self):
        self.system = build_system(n=5, f=2, clients=1, seed=7, checkpoint_interval=5)
        self.system.run(400.0)
        self.replica = self.system.replicas[2]
        self.certificate, self.snapshot = self.replica.checkpoint
        self.verify = self.system.sim.host(2).authenticator.verify
        self.quorum_of = self.replica.policy.quorum_of

    def test_genuine_validates(self):
        assert checkpoint_certificate_is_valid(
            self.certificate, self.quorum_of, self.verify
        )

    def test_missing_vote_rejected(self):
        truncated = CheckpointCertificate(votes=self.certificate.votes[:-1])
        assert not checkpoint_certificate_is_valid(truncated, self.quorum_of, self.verify)

    def test_mixed_payloads_rejected(self):
        # Replace one vote with a vote for a different slot count.
        host = self.system.sim.host(1)
        rogue = host.authenticator.sign(
            CheckpointPayload(view=0, slot_count=999, state_digest="beef")
        )
        mixed = CheckpointCertificate(votes=(rogue, *self.certificate.votes[1:]))
        assert not checkpoint_certificate_is_valid(mixed, self.quorum_of, self.verify)

    def test_empty_or_garbage_rejected(self):
        assert not checkpoint_certificate_is_valid(
            CheckpointCertificate(votes=()), self.quorum_of, self.verify
        )
        assert not checkpoint_certificate_is_valid("junk", self.quorum_of, self.verify)

    def test_snapshot_tamper_detected_via_digest(self):
        tampered = (*self.snapshot[:3], (("stolen-key", 1),), self.snapshot[4])
        assert digest(tampered) != self.certificate.payload.state_digest
