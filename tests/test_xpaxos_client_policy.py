"""Tests for the XPaxos client and the quorum policies."""

import pytest

from repro.xpaxos.enumeration import quorum_for_view
from repro.xpaxos.quorum_policy import EnumerationPolicy, SelectionPolicy
from repro.xpaxos.system import build_system


class TestEnumerationPolicy:
    def setup_method(self):
        self.policy = EnumerationPolicy(5, 2)

    def test_quorum_and_leader(self):
        assert self.policy.quorum_of(0) == frozenset({1, 2, 3})
        assert self.policy.leader_of(0) == 1
        assert self.policy.leader_of(6) == min(quorum_for_view(6, 5, 3))

    def test_suspicion_in_quorum_advances_one_view(self):
        assert self.policy.next_view_on_suspicion(0, frozenset({2})) == 1

    def test_suspicion_outside_quorum_ignored(self):
        assert self.policy.next_view_on_suspicion(0, frozenset({5})) is None

    def test_ignores_selected_quorums(self):
        assert self.policy.view_for_selected_quorum(frozenset({2, 3, 4}), 0) is None


class TestSelectionPolicy:
    def setup_method(self):
        self.policy = SelectionPolicy(5, 2)

    def test_suspicions_alone_do_not_move_views(self):
        assert self.policy.next_view_on_suspicion(0, frozenset({1, 2, 3})) is None

    def test_selected_quorum_maps_to_its_view(self):
        target = frozenset({2, 3, 4})
        view = self.policy.view_for_selected_quorum(target, 0)
        assert view is not None
        assert self.policy.quorum_of(view) == target

    def test_current_quorum_is_a_no_op(self):
        current = self.policy.quorum_of(3)
        assert self.policy.view_for_selected_quorum(current, 3) is None

    def test_same_quorum_next_cycle_when_behind(self):
        # Selecting a quorum whose rank is behind the current view jumps
        # a full enumeration cycle forward.
        target = self.policy.quorum_of(0)
        view = self.policy.view_for_selected_quorum(target, 5)
        assert view == 10  # rank 0 + one C(5,3)=10 cycle
        assert self.policy.quorum_of(view) == target


class TestClientBehaviour:
    def test_client_done_flag(self):
        system = build_system(n=5, f=2, clients=1, seed=3,
                              client_ops=[[("put", "k", 1), ("get", "k")]])
        client = list(system.clients.values())[0]
        assert not client.done
        system.run(100.0)
        assert client.done
        assert [entry[2] for entry in client.completed] == [None, 1]

    def test_client_latency_stats(self):
        system = build_system(n=5, f=2, clients=1, seed=3)
        system.run(300.0)
        client = list(system.clients.values())[0]
        assert client.mean_latency() > 0
        assert client.throughput() > 0
        assert client.throughput(until=0.0) == 0.0

    def test_client_learns_new_leader_from_replies(self):
        system = build_system(n=5, f=2, mode="selection", clients=1, seed=9)
        system.adversary.crash(1, at=30.0)
        system.run(800.0)
        client = list(system.clients.values())[0]
        assert client.believed_view > 0
        assert client.done

    def test_retransmission_drives_progress_through_crash(self):
        system = build_system(n=5, f=2, mode="selection", clients=1, seed=9,
                              client_retry=15.0)
        system.adversary.crash(1, at=10.0)
        system.run(600.0)
        assert system.total_completed() == 20
        assert system.sim.log.count("client.retry") >= 1

    def test_duplicate_replies_do_not_double_complete(self):
        system = build_system(n=5, f=2, clients=1, seed=3,
                              client_ops=[[("put", "k", 1)]])
        system.run(100.0)
        client = list(system.clients.values())[0]
        assert len(client.completed) == 1

    def test_zero_clients_allowed(self):
        system = build_system(n=5, f=2, clients=0, seed=3)
        system.run(50.0)
        assert system.total_completed() == 0

    def test_mean_latency_zero_when_empty(self):
        system = build_system(n=5, f=2, clients=1, seed=3, client_ops=[[]])
        system.run(10.0)
        client = list(system.clients.values())[0]
        assert client.mean_latency() == 0.0
        assert client.throughput() == 0.0


class _StubHost:
    """Minimal host for client arithmetic tests (no scheduler needed)."""

    def __init__(self):
        self.pid = 9
        self.now = 0.0
        self._modules = []

    def add_module(self, module):
        self._modules.append(module)
        return module

    def subscribe(self, kind, handler):
        pass


class TestClientDiagnostics:
    def test_throughput_measured_from_client_start(self):
        from repro.xpaxos.client import XPaxosClient

        host = _StubHost()
        client = XPaxosClient(host, n=5, f=2, ops=[])
        host.now = 50.0
        client.start()
        assert client.started_at == 50.0
        # Two completions at t=60 and t=80; horizon t=100 -> 2 ops / 50 units.
        client.completed.append((0, ("get", "k"), None, 1.0, 60.0))
        client.completed.append((1, ("get", "k"), None, 1.0, 80.0))
        host.now = 100.0
        assert client.throughput() == pytest.approx(2 / 50.0)
        # A horizon before the client started never divides by <= 0.
        assert client.throughput(until=40.0) == 0.0
        assert client.throughput(until=50.0) == 0.0

    def test_retry_timers_stay_bounded_over_many_requests(self):
        # Regression: each request used to arm a fresh retry chain without
        # cancelling the previous one, so scheduler pending() grew with the
        # number of requests when retry_timeout was long.
        ops = [[("put", f"k{i}", i) for i in range(20)]]
        system = build_system(n=5, f=2, clients=1, seed=3,
                              client_ops=ops, client_retry=10_000.0)
        system.run(400.0)
        client = list(system.clients.values())[0]
        assert client.done
        assert len(client.completed) == 20
        live_retries = [
            event
            for _, _, event in system.sim.scheduler._queue
            if not event.cancelled and (event.label or "").startswith("client-retry")
        ]
        assert len(live_retries) <= 1

    def test_redirect_to_new_leader_after_view_change(self):
        # After a leader crash the client broadcasts on timeout, learns the
        # new view from replies, and sends subsequent requests straight to
        # the new leader — no broadcast, no retry.
        from repro.xpaxos.enumeration import leader_of_view

        system = build_system(n=5, f=2, mode="selection", clients=1, seed=9)
        system.adversary.crash(1, at=30.0)
        system.run(800.0)
        client = list(system.clients.values())[0]
        assert client.done and client.believed_view > 0
        new_leader = leader_of_view(client.believed_view, 5, 3)
        assert new_leader != 1

        sent = []
        original_send = client.host.send

        def recording_send(dst, kind, payload):
            sent.append((dst, kind))
            return original_send(dst, kind, payload)

        client.host.send = recording_send
        retries_before = system.sim.log.count("client.retry")
        done_before = len(client.completed)
        client.ops.extend([("put", "redirect", i) for i in range(3)])
        client._next_request()
        system.run(900.0)

        assert len(client.completed) == done_before + 3
        assert system.sim.log.count("client.retry") == retries_before
        request_targets = [dst for dst, kind in sent if kind == "xp.request"]
        assert request_targets == [new_leader] * 3
