"""Tests for the view <-> quorum mapping (Section V-B)."""

import itertools
from math import comb

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.errors import ConfigurationError
from repro.xpaxos.enumeration import (
    leader_of_view,
    quorum_for_view,
    rank_of_quorum,
    total_quorums,
    view_for_quorum,
)


class TestTotals:
    def test_counts(self):
        assert total_quorums(5, 3) == 10
        assert total_quorums(7, 5) == 21

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            total_quorums(5, 0)
        with pytest.raises(ConfigurationError):
            total_quorums(5, 6)


class TestUnranking:
    def test_view_zero_is_lexicographic_first(self):
        assert quorum_for_view(0, 5, 3) == frozenset({1, 2, 3})

    def test_enumeration_matches_itertools_order(self):
        combos = [frozenset(c) for c in itertools.combinations(range(1, 6), 3)]
        assert [quorum_for_view(v, 5, 3) for v in range(10)] == combos

    def test_round_robin_wraps(self):
        assert quorum_for_view(10, 5, 3) == quorum_for_view(0, 5, 3)
        assert quorum_for_view(23, 5, 3) == quorum_for_view(3, 5, 3)

    def test_rejects_negative_view(self):
        with pytest.raises(ConfigurationError):
            quorum_for_view(-1, 5, 3)


class TestRanking:
    def test_rank_roundtrip_small(self):
        for view in range(total_quorums(6, 4)):
            quorum = quorum_for_view(view, 6, 4)
            assert rank_of_quorum(quorum, 6, 4) == view

    @settings(max_examples=60, deadline=None)
    @given(st.integers(4, 9), st.data())
    def test_rank_roundtrip_property(self, n, data):
        q = data.draw(st.integers(1, n))
        view = data.draw(st.integers(0, total_quorums(n, q) - 1))
        quorum = quorum_for_view(view, n, q)
        assert rank_of_quorum(quorum, n, q) == view

    def test_rejects_wrong_size(self):
        with pytest.raises(ConfigurationError):
            rank_of_quorum({1, 2}, 5, 3)

    def test_rejects_out_of_range_members(self):
        with pytest.raises(ConfigurationError):
            rank_of_quorum({1, 2, 9}, 5, 3)


class TestViewForQuorum:
    def test_jumps_forward_skipping_earlier_quorums(self):
        # "i suspects all quorums ordered before Q": the view lands
        # exactly on Q's rank in the current cycle.
        target = frozenset({2, 3, 4})
        rank = rank_of_quorum(target, 5, 3)
        assert view_for_quorum(target, 5, 3, min_view=0) == rank

    def test_wraps_to_next_cycle_when_passed(self):
        target = frozenset({1, 2, 3})  # rank 0
        assert view_for_quorum(target, 5, 3, min_view=1) == 10

    def test_min_view_inclusive(self):
        target = frozenset({1, 2, 4})  # rank 1
        assert view_for_quorum(target, 5, 3, min_view=1) == 1

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 40), st.integers(0, 9))
    def test_result_at_least_min_view_and_correct(self, min_view, rank):
        target = quorum_for_view(rank, 5, 3)
        view = view_for_quorum(target, 5, 3, min_view)
        assert view >= min_view
        assert quorum_for_view(view, 5, 3) == target
        # Minimality: no earlier view >= min_view maps to the target.
        for earlier in range(min_view, view):
            assert quorum_for_view(earlier, 5, 3) != target


class TestLeader:
    def test_leader_is_min_of_quorum(self):
        for view in range(10):
            assert leader_of_view(view, 5, 3) == min(quorum_for_view(view, 5, 3))
