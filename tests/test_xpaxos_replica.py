"""Tests for the XPaxos replica: normal case, Fig. 2/3, detection, views."""

import pytest

from repro.crypto.authenticator import SignedMessage
from repro.xpaxos.messages import (
    KIND_COMMIT,
    KIND_PREPARE,
    ClientRequest,
    CommitPayload,
    PreparePayload,
    commit_is_malformed,
)
from repro.xpaxos.state_machine import KeyValueStore
from repro.xpaxos.system import build_system


class TestStateMachine:
    def test_put_get_del(self):
        kv = KeyValueStore()
        assert kv.apply(("put", "a", 1)) is None
        assert kv.apply(("get", "a")) == 1
        assert kv.apply(("put", "a", 2)) == 1
        assert kv.apply(("del", "a")) == 2
        assert kv.apply(("get", "a")) is None

    def test_noop_and_unknown(self):
        kv = KeyValueStore()
        assert kv.apply(("noop",)) is None
        assert kv.apply(("explode", 1)) == ("rejected", "explode")
        assert kv.apply(()) is None

    def test_digest_tracks_history_order(self):
        a, b = KeyValueStore(), KeyValueStore()
        a.apply(("put", "x", 1))
        a.apply(("put", "y", 2))
        b.apply(("put", "y", 2))
        b.apply(("put", "x", 1))
        assert a.state_digest() != b.state_digest()  # order matters

    def test_digest_equal_for_equal_histories(self):
        a, b = KeyValueStore(), KeyValueStore()
        for kv in (a, b):
            kv.apply(("put", "x", 1))
        assert a.state_digest() == b.state_digest()


class TestCommitValidation:
    def setup_method(self):
        self.system = build_system(n=5, f=2, clients=1, seed=1)
        self.leader = self.system.sim.host(1)
        self.member = self.system.sim.host(2)
        client = self.system.sim.host(6)
        request = ClientRequest(client=6, sequence=0, op=("noop",))
        signed_request = client.authenticator.sign(request)
        self.prepare_body = PreparePayload(view=0, slot=0, signed_requests=(signed_request,))
        self.prepare = self.leader.authenticator.sign(self.prepare_body)

    def test_valid_commit(self):
        commit = CommitPayload(view=0, slot=0, prepare=self.prepare)
        assert commit_is_malformed(commit, self.member.authenticator.verify) is None

    def test_missing_prepare(self):
        commit = CommitPayload(view=0, slot=0, prepare="garbage")
        assert commit_is_malformed(commit, self.member.authenticator.verify)

    def test_bad_signature(self):
        tampered = SignedMessage(self.prepare_body, self.member.authenticator.sign("x").signature)
        commit = CommitPayload(view=0, slot=0, prepare=tampered)
        reason = commit_is_malformed(commit, self.member.authenticator.verify)
        assert reason == "bad-prepare-signature"

    def test_view_slot_mismatch(self):
        commit = CommitPayload(view=0, slot=1, prepare=self.prepare)
        reason = commit_is_malformed(commit, self.member.authenticator.verify)
        assert reason == "view-slot-mismatch"

    def test_embedded_not_a_prepare(self):
        not_prepare = self.leader.authenticator.sign(("something",))
        commit = CommitPayload(view=0, slot=0, prepare=not_prepare)
        reason = commit_is_malformed(commit, self.member.authenticator.verify)
        assert reason == "embedded-not-a-prepare"


class TestNormalCase:
    def test_fault_free_run_commits_everything(self):
        system = build_system(n=5, f=2, clients=2, seed=7)
        system.run(400.0)
        assert system.total_completed() == 40
        assert system.histories_consistent()
        assert all(r.view_changes == 0 for r in system.replicas.values())
        # Only the active quorum executed (passive replicas stay dark).
        active = {1, 2, 3}
        for pid, replica in system.replicas.items():
            expected = 40 if pid in active else 0
            assert len(replica.executed) == expected

    def test_no_false_suspicions_fault_free(self):
        system = build_system(n=5, f=2, clients=1, seed=8)
        system.run(300.0)
        assert system.sim.log.count("fd.timeout") == 0

    def test_figure3_commit_before_prepare_handled(self):
        # Delay the leader's PREPAREs to p3 so COMMITs from p2 overtake
        # them (Figure 3): p3 must adopt the embedded PREPARE, commit,
        # and not suspect anyone.
        system = build_system(n=5, f=2, clients=1, seed=9)
        system.adversary.delay_links(
            1, extra_delay=3.0, dsts={3}, kinds={KIND_PREPARE}
        )
        system.run(400.0)
        assert system.total_completed() == 20
        assert len(system.replicas[3].executed) == 20
        assert system.histories_consistent()
        # The delay stays under the FD timeout: no suspicion of the leader.
        assert 1 not in system.sim.host(3).fd.suspected

    def test_prepare_omission_on_one_link_detected_and_survived(self):
        # Leader's PREPAREs to p3 are dropped entirely.  p3 adopts the
        # first request from embedded COMMITs (Figure 3) but its
        # expectation for the leader's PREPARE times out — the per-link
        # omission is *detected* (the paper's headline capability) and
        # the quorum moves to one avoiding the (1,3) link; the workload
        # still completes.
        system = build_system(n=5, f=2, clients=1, seed=10)
        system.adversary.omit_links(1, dsts={3}, kinds={KIND_PREPARE})
        system.run(900.0)
        assert system.total_completed() == 20
        assert system.histories_consistent()
        # p3 suspected the leader for the omitted link...
        assert any(
            e.payload.get("target") == 1
            for e in system.sim.log.events(kind="fd.suspect", process=3)
        )
        # ...and the final quorum avoids putting 1 and 3 together.
        final_quorum = system.replicas[2].quorum
        assert not {1, 3} <= final_quorum


class TestEquivocationDetection:
    def test_leader_equivocation_detected(self):
        # A Byzantine leader sends two different PREPAREs for one slot:
        # members exchange COMMITs embedding them and detect the leader.
        system = build_system(n=5, f=2, clients=1, seed=11,
                              client_ops=[[]])
        system.sim.start()
        leader = system.sim.host(1)
        client = system.sim.host(6)
        request_a = client.authenticator.sign(
            ClientRequest(client=6, sequence=0, op=("put", "k", "a"))
        )
        request_b = client.authenticator.sign(
            ClientRequest(client=6, sequence=0, op=("put", "k", "b"))
        )
        prepare_a = leader.authenticator.sign(PreparePayload(0, 0, (request_a,)))
        prepare_b = leader.authenticator.sign(PreparePayload(0, 0, (request_b,)))
        leader.send(2, KIND_PREPARE, prepare_a)
        leader.send(3, KIND_PREPARE, prepare_b)
        system.run(100.0)
        detected = [
            reason
            for replica in (system.replicas[2], system.replicas[3])
            for _, culprit, reason in replica.detected_events
            if culprit == 1
        ]
        assert any("equivocation" in reason for reason in detected)

    def test_malformed_commit_detects_sender(self):
        system = build_system(n=5, f=2, clients=0, seed=12)
        system.sim.start()
        byz = system.sim.host(2)
        bogus_commit = byz.authenticator.sign(
            CommitPayload(view=0, slot=0, prepare="not-a-prepare")
        )
        byz.send(3, KIND_COMMIT, bogus_commit)
        system.run(50.0)
        assert any(
            culprit == 2 and reason.startswith("malformed-commit")
            for _, culprit, reason in system.replicas[3].detected_events
        )


class TestViewChanges:
    @pytest.mark.parametrize("mode", ["selection", "enumeration"])
    def test_leader_crash_recovers(self, mode):
        system = build_system(n=5, f=2, mode=mode, clients=2, seed=9)
        system.adversary.crash(1, at=30.0)
        system.run(800.0)
        assert system.total_completed() == 40
        assert system.histories_consistent()
        views = {r.view for r in system.correct_replicas()}
        assert len(views) == 1
        final_quorum = system.replicas[2].quorum
        assert 1 not in final_quorum

    def test_selection_mode_skips_to_target_view(self):
        system = build_system(n=5, f=2, mode="selection", clients=1, seed=9)
        system.adversary.crash(1, at=30.0)
        system.run(800.0)
        # Selection jumps straight past every quorum containing p1:
        # far fewer view-change events than the enumeration walk.
        changes = max(r.view_changes for r in system.correct_replicas())
        assert changes <= 3

    def test_passive_replica_crash_is_free(self):
        # Crash outside the active quorum: no view change at all.
        system = build_system(n=5, f=2, mode="selection", clients=1, seed=13)
        system.adversary.crash(5, at=30.0)
        system.run(500.0)
        assert system.total_completed() == 20
        assert all(r.view_changes == 0 for r in system.correct_replicas())

    def test_two_crashes_still_recovers(self):
        system = build_system(n=5, f=2, mode="selection", clients=1, seed=14)
        system.adversary.crash(1, at=30.0)
        system.adversary.crash(2, at=40.0)
        system.run(900.0)
        assert system.total_completed() == 20
        assert system.histories_consistent()
        assert system.replicas[3].quorum == frozenset({3, 4, 5})
